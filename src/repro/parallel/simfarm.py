"""Simulation fan-out: independent replay runs across the worker pool.

A trial series is "record once, replay N times" — and once every run owns
a private :class:`~numpy.random.SeedSequence` (see
:func:`repro.testbeds.base.series_seed_plan`), the N replays are pure
functions of ``(profile, recordings, run seed)`` with no shared mutable
state.  :class:`SimFarm` exploits exactly that: it ships the recordings
into shared memory once, dispatches one :func:`~repro.testbeds.base.
simulate_run` per worker task on the persistent pool
(:mod:`repro.parallel.pool`), and reassembles results **by run index**, so
the series is bit-identical to serial no matter the job count, the
completion order, or even the submission order.

Transport follows the comparison engine's rules (:mod:`~.shm`): packet
arrays never pickle.  Inputs — each recording's tag/size/time arrays and
burst metadata — travel as :class:`~.shm.ArraySpec` handles; outputs come
back through per-run shared buffers pre-sized to the recorded packet count
(replay can drop packets but never mint them), with only scalars crossing
the pickle boundary.

At ``jobs=1`` the farm calls :func:`simulate_run` in-process — the same
function the workers run — so the serial path is not a second
implementation but the identical code minus the transport.
"""

from __future__ import annotations

import numpy as np

from ..core.trial import Trial
from ..net.pktarray import PacketArray
from ..obs import metrics
from ..obs.trace import span
from ..replay.recording import Recording
from ..testbeds.base import RunArtifacts, Testbed, simulate_run
from ..testbeds.profiles import EnvironmentProfile
from .pool import gather, get_pool, submit_task
from .shard import default_jobs
from .shm import ArraySpec, ShmArena, attach_view, detach_all

__all__ = ["SimFarm", "run_series_parallel"]


# ----------------------------------------------------------------------
# Worker task body (module level: picklable by the process pool).
# ----------------------------------------------------------------------

def _rebuild_recording(spec: dict, attachments: dict) -> Recording:
    """Worker-side: a Recording whose arrays are views into shared memory."""
    packets = PacketArray(
        attach_view(spec["tags"], attachments),
        attach_view(spec["sizes"], attachments),
        attach_view(spec["times_ns"], attachments),
        meta=dict(spec["pkt_meta"]),
    )
    return Recording(
        packets=packets,
        burst_ids=attach_view(spec["burst_ids"], attachments),
        burst_tsc=attach_view(spec["burst_tsc"], attachments),
        tsc=spec["tsc"],
        truncated=spec["truncated"],
        meta=dict(spec["meta"]),
    )


def _simulate_run_worker(task: dict):
    """Run one replay and write its trial into the shared output buffers.

    Returns only scalars; the parent rebuilds the Trial from its own view
    of the output segments, so packet arrays cross no pickle boundary in
    either direction.
    """
    attachments: dict = {}
    try:
        recordings = [
            _rebuild_recording(spec, attachments) for spec in task["recordings"]
        ]
        art = simulate_run(
            task["profile"], recordings, task["run_seq"], task["label"]
        )
        out_tags = attach_view(task["out_tags"], attachments)
        out_times = attach_view(task["out_times"], attachments)
        n = len(art.trial)
        out_tags[:n] = art.trial.tags
        out_times[:n] = art.trial.times_ns
        return {
            "n": n,
            "meta": dict(art.trial.meta),
            "n_dropped": art.n_dropped,
            "n_stalls": art.n_stalls,
            "freq_errors_ppm": art.freq_errors_ppm,
            "start_offsets_ns": art.start_offsets_ns,
            "seed_key": art.seed_key,
        }
    finally:
        detach_all(attachments)


# ----------------------------------------------------------------------
# The farm
# ----------------------------------------------------------------------

class SimFarm:
    """Dispatch a series' independent replay runs across the global pool.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` reads ``REPRO_JOBS`` (default 1).
        ``jobs=1`` runs every replay in-process through the identical
        :func:`~repro.testbeds.base.simulate_run`; ``jobs>1`` draws on the
        persistent pool from :func:`repro.parallel.pool.get_pool` — the
        farm never creates (or shuts down) an executor of its own.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = default_jobs() if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")

    # ------------------------------------------------------------------
    def run_series(
        self,
        profile: EnvironmentProfile,
        recordings: list[Recording],
        run_seqs,
        labels: list[str] | None = None,
        *,
        submit_order: list[int] | None = None,
    ) -> list[RunArtifacts]:
        """Simulate one run per seed sequence; results in run order.

        ``submit_order`` permutes only the order tasks are handed to the
        pool (the seed-independence property test sweeps it); the returned
        list is always indexed by run, and every element is bit-identical
        regardless of that order.
        """
        run_seqs = list(run_seqs)
        n_runs = len(run_seqs)
        if n_runs == 0:
            return []
        if labels is None:
            labels = ["" for _ in range(n_runs)]
        if len(labels) != n_runs:
            raise ValueError("labels must match run_seqs in length")
        if submit_order is None:
            submit_order = list(range(n_runs))
        if sorted(submit_order) != list(range(n_runs)):
            raise ValueError("submit_order must be a permutation of the runs")

        metrics.counter("sim.runs").add(n_runs)
        if self.jobs == 1:
            out: list[RunArtifacts | None] = [None] * n_runs
            with span("sim.series", n_runs=n_runs, jobs=1):
                for i in submit_order:
                    with span("sim.run", run=i):
                        out[i] = simulate_run(
                            profile, recordings, run_seqs[i], labels[i]
                        )
            return out  # type: ignore[return-value]

        pool = get_pool(self.jobs)
        # Replay drops packets but never creates them, so the recorded
        # packet count bounds every run's trial size.
        capacity = sum(len(rec) for rec in recordings)
        with span("sim.series", n_runs=n_runs, jobs=self.jobs), \
                ShmArena(enabled=True) as arena:
            rec_specs = [self._share_recording(arena, rec) for rec in recordings]
            futures: list = [None] * n_runs
            out_bufs: list = [None] * n_runs
            for i in submit_order:
                out_tags, tags_buf = arena.allocate(capacity, np.int64)
                out_times, times_buf = arena.allocate(capacity, np.float64)
                out_bufs[i] = (tags_buf, times_buf)
                task = {
                    "profile": profile,
                    "recordings": rec_specs,
                    "run_seq": run_seqs[i],
                    "label": labels[i],
                    "out_tags": out_tags,
                    "out_times": out_times,
                }
                futures[i] = submit_task(
                    pool, _simulate_run_worker, task, name="sim.run", run=i
                )
            scalars = gather(futures)

            artifacts = []
            for i, s in enumerate(scalars):
                tags_buf, times_buf = out_bufs[i]
                n = s["n"]
                trial = Trial(
                    tags_buf[:n].copy(),
                    times_buf[:n].copy(),
                    label=labels[i],
                    meta=s["meta"],
                )
                artifacts.append(
                    RunArtifacts(
                        trial=trial,
                        n_dropped=s["n_dropped"],
                        n_stalls=s["n_stalls"],
                        freq_errors_ppm=s["freq_errors_ppm"],
                        start_offsets_ns=s["start_offsets_ns"],
                        seed_key=s["seed_key"],
                    )
                )
        return artifacts

    # ------------------------------------------------------------------
    @staticmethod
    def _share_recording(arena: ShmArena, rec: Recording) -> dict:
        """Copy one recording's arrays into the arena; pickle only handles.

        The TSC model, truncation flag and meta dicts are tiny and ride
        the pickle; the five per-packet/per-burst arrays go through shared
        memory.
        """
        return {
            "tags": arena.share(rec.packets.tags),
            "sizes": arena.share(rec.packets.sizes),
            "times_ns": arena.share(rec.packets.times_ns),
            "pkt_meta": dict(rec.packets.meta),
            "burst_ids": arena.share(rec.burst_ids),
            "burst_tsc": arena.share(rec.burst_tsc),
            "tsc": rec.tsc,
            "truncated": rec.truncated,
            "meta": dict(rec.meta),
        }


def run_series_parallel(
    testbed: Testbed,
    n_runs: int = 5,
    *,
    labels: list[str] | None = None,
    jobs: int | None = None,
):
    """Convenience wrapper: ``testbed.run_series(..., jobs=jobs)``."""
    return testbed.run_series(n_runs, labels=labels, jobs=jobs)
