"""The fused serial timing kernel: one walk over the matched rows.

Before this module, :func:`repro.core.report.compare_trials` derived the
timing side of a pair from four separate passes — ``latency_deltas_ns``
and ``iat_deltas_ns`` once each for the L and I reductions, then *again*
for the two figure histograms, with ``Trial.iats_ns`` materializing a
full-trial gap array on every IAT call.  Each pass re-gathers the same
matched rows; at paper scale (~1M common packets) that is tens of
megabytes of redundant traffic through the allocator per pair.

:func:`fused_timings` walks the matched delta data once and produces
everything the timing side of a :class:`~repro.core.report.PairReport`
needs together: the signed latency and IAT delta arrays, both symlog
histograms, the ±``within_ns`` count, the L and I metrics, and (on
request) the per-window deviation series of :mod:`repro.core.windows`.

Exactness is inherited, not re-argued:

* the delta expressions are the identical IEEE-754 elementwise operations
  of :func:`~repro.core.latency.latency_deltas_ns` and
  :func:`~repro.core.iat.iat_deltas_ns` — gaps reach back to each
  packet's predecessor *in the full trial* by direct indexing, the exact
  form the parallel shard kernel (:mod:`repro.parallel.partials`) already
  uses and the differential suites already pin;
* the final reductions are the canonical single-reduction functions every
  other path runs (:func:`~repro.core.latency.latency_from_deltas`,
  :func:`~repro.core.iat.iat_from_deltas`,
  :func:`~repro.core.histograms.pct_within_from_counts`,
  :func:`~repro.core.windows.deviation_from_deltas`), called on the same
  arrays in the same order.

``tests/test_fusedpass.py`` is the differential harness proving the fused
kernel bit-identical to the per-component functions — which all remain
exported, as the reference path.

Observability: the kernel is counted (``fused.pairs``) and its wall time
lands in the always-on ``fused.pair_ns`` log2 histogram, so ``--stats``
shows the fused-path distribution even on untraced runs; under
``--trace`` each invocation is the span ``analysis.fused.timings``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs import metrics
from ..obs.trace import span
from .histograms import SymlogBins, pct_within_from_counts
from .iat import iat_denominator_ns, iat_from_deltas
from .latency import latency_from_deltas, latency_span_ns
from .matching import Matching
from .trial import Trial
from .windows import WindowedDeviation, deviation_from_deltas

__all__ = ["FusedTimings", "fused_timings"]


@dataclass(frozen=True)
class FusedTimings:
    """Everything the timing side of one pair report needs, in one pass.

    ``dlat``/``diat`` are the signed per-common-packet delta series in A
    order (the figure series); the counts are the symlog histogram bins
    over them; ``l``/``i`` are Equations 3 and 4; ``windows`` is the
    optional per-window deviation series (``None`` unless a ``window_ns``
    was requested).
    """

    n_common: int
    dlat: np.ndarray
    diat: np.ndarray
    lat_counts: np.ndarray
    iat_counts: np.ndarray
    iat_within: int
    l: float
    i: float
    pct_iat_within: float
    windows: WindowedDeviation | None = None


def fused_timings(
    baseline: Trial,
    run: Trial,
    m: Matching,
    bins: SymlogBins | None = None,
    within_ns: float = 10.0,
    window_ns: float | None = None,
) -> FusedTimings:
    """One pass over the matched rows: deltas, histograms, L, I, windows.

    ``m`` must be the pair's matching.  The deltas are gathered once and
    every downstream consumer reads the same two arrays; the reductions
    are the canonical shared functions, so the result is bit-identical to
    running the per-component functions separately.
    """
    bins = bins if bins is not None else SymlogBins()
    n = m.n_common
    metrics.counter("fused.pairs").add()
    t0 = time.perf_counter_ns()
    with span("analysis.fused.timings", n_common=n):
        n_bins = bins.edges().size - 1
        if n == 0:
            empty = np.empty(0, dtype=np.float64)
            result = FusedTimings(
                n_common=0,
                dlat=empty,
                diat=empty,
                lat_counts=np.zeros(n_bins, dtype=np.int64),
                iat_counts=np.zeros(n_bins, dtype=np.int64),
                iat_within=0,
                l=0.0,
                i=0.0,
                pct_iat_within=0.0,
                windows=None,
            )
        else:
            times_a, times_b = baseline.times_ns, run.times_ns
            ja, jb = m.idx_a, m.idx_b

            # Identical elementwise expressions to latency_deltas_ns /
            # iat_deltas_ns; the gap of a trial's first packet is 0 by the
            # paper's base case, and ja - 1 wrapping to -1 on row 0 is
            # overwritten by that masked store before anyone reads it.
            dlat = (times_b[jb] - times_b[0]) - (times_a[ja] - times_a[0])
            g_a = times_a[ja] - times_a[ja - 1]
            g_a[ja == 0] = 0.0
            g_b = times_b[jb] - times_b[jb - 1]
            g_b[jb == 0] = 0.0
            diat = g_b - g_a

            edges = bins.edges()
            lat_counts, _ = np.histogram(dlat, bins=edges)
            iat_counts, _ = np.histogram(diat, bins=edges)

            abs_dlat = np.abs(dlat)
            abs_diat = np.abs(diat)
            iat_within = int(np.count_nonzero(abs_diat <= within_ns))

            windows = None
            if window_ns is not None:
                windows = deviation_from_deltas(
                    baseline.relative_times_ns(), ja, abs_dlat, abs_diat, window_ns
                )

            result = FusedTimings(
                n_common=n,
                dlat=dlat,
                diat=diat,
                lat_counts=lat_counts.astype(np.int64),
                iat_counts=iat_counts.astype(np.int64),
                iat_within=iat_within,
                l=latency_from_deltas(dlat, n, latency_span_ns(baseline, run)),
                i=iat_from_deltas(diat, n, iat_denominator_ns(baseline, run)),
                pct_iat_within=pct_within_from_counts(iat_within, n),
                windows=windows,
            )
    metrics.histogram("fused.pair_ns").observe(time.perf_counter_ns() - t0)
    return result
