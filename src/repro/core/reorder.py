"""Bellardo-Savage-style reordering analysis (Section 9's comparison point).

Bellardo and Savage (IMW '02) characterize reordering as a *probability
as a function of inter-packet spacing*: how likely is a packet pair sent
``k`` apart (or ``Δt`` apart) to arrive inverted?  The paper contrasts
this with its O metric — O captures the *distance* of reordering, the
B&S view captures its *spacing sensitivity* — and notes the two are
complementary ("their methods work on any TCP-supporting system ... Our
metrics capture the distance of reordering, and could also be shown as a
function of spacing").

Here the send order is recovered from the Choir tags' sequence numbers
(per replay node), so the measurement works on any capture the tools in
this package produce — including multi-replayer merges, where each
node's substream is analyzed in its own sequence space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trial import Trial

#: Tag layout (see repro.analysis.tagging): replayer id above bit 48.
#: Inlined here rather than imported to keep core free of analysis deps.
_SEQ_BITS = 48
_SEQ_MASK = (1 << _SEQ_BITS) - 1

__all__ = ["ReorderBySpacing", "reorder_probability_by_spacing"]


@dataclass(frozen=True)
class ReorderBySpacing:
    """Reordering probability per send-spacing lag.

    ``probability[k-1]`` is the fraction of packet pairs sent ``k``
    sequence positions apart (same replay node) that arrived inverted.
    """

    lags: np.ndarray
    probability: np.ndarray
    n_pairs: np.ndarray

    @property
    def any_reordering(self) -> bool:
        """True when any measured lag shows inversions."""
        return bool(np.any(self.probability > 0))

    def rows(self) -> list[dict]:
        """Table rows for rendering."""
        return [
            {"lag": int(k), "p_reorder": float(p), "n_pairs": int(n)}
            for k, p, n in zip(self.lags, self.probability, self.n_pairs)
        ]


def reorder_probability_by_spacing(trial: Trial, max_lag: int = 16) -> ReorderBySpacing:
    """Measure P(inverted arrival) vs send spacing, per the B&S framing.

    For every replay node present in the capture, packets are mapped to
    their arrival ranks; a pair ``(i, i+k)`` in send order is inverted
    when the later-sent packet arrived earlier.  Pairs straddling missing
    packets are simply not formed (the same convention B&S use for loss).
    """
    if max_lag < 1:
        raise ValueError("max_lag must be >= 1")
    inversions = np.zeros(max_lag, dtype=np.int64)
    totals = np.zeros(max_lag, dtype=np.int64)

    rids = trial.tags >> _SEQ_BITS
    seqs = trial.tags & _SEQ_MASK
    arrival_rank = np.arange(len(trial), dtype=np.int64)
    for rid in np.unique(rids):
        mask = rids == rid
        node_seqs = seqs[mask]
        node_ranks = arrival_rank[mask]
        # Order this node's packets by send sequence.
        order = np.argsort(node_seqs, kind="stable")
        s = node_seqs[order]
        r = node_ranks[order]
        for k in range(1, max_lag + 1):
            if s.shape[0] <= k:
                break
            # Only count pairs exactly k sequence numbers apart (gaps from
            # drops break the pair, as in B&S).
            valid = (s[k:] - s[:-k]) == k
            totals[k - 1] += int(np.count_nonzero(valid))
            inversions[k - 1] += int(np.count_nonzero(valid & (r[k:] < r[:-k])))

    with np.errstate(invalid="ignore", divide="ignore"):
        prob = np.where(totals > 0, inversions / np.maximum(totals, 1), 0.0)
    return ReorderBySpacing(
        lags=np.arange(1, max_lag + 1, dtype=np.int64),
        probability=prob,
        n_pairs=totals,
    )
