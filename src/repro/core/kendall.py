"""Kendall-tau distance: the classical alternative to the paper's O.

The paper measures reordering by edit-script move distances (Eq. 2).
The statistics literature's standard is the Kendall tau distance — the
number of discordant pairs (inversions) between two orderings,
normalized by the pair count ``m(m−1)/2``.  The two metrics respond
differently to structure:

* one packet displaced k positions: O charges ~k once; tau charges k
  inverted pairs — identical here;
* a *block* of b packets displaced k positions: O charges b·k (every
  member moves k); tau charges b·k as well (each member inverts against
  the k packets it jumped) — still aligned;
* two blocks *swapping*: tau counts every cross pair (b²), O counts the
  shorter move — they diverge, and comparing them distinguishes
  "slipped" from "shuffled" reorderings.

Inversions are counted by iterative merge sort in O(n log n) with the
merge step vectorized (each run of left-half survivors contributes via
``searchsorted``), so million-packet captures are fine.
"""

from __future__ import annotations

import numpy as np

from .matching import match_trials
from .trial import Trial

__all__ = ["count_inversions", "kendall_tau_distance"]


def count_inversions(seq: np.ndarray) -> int:
    """Number of inversions (pairs i < j with seq[i] > seq[j]).

    Iterative bottom-up merge sort; per merge, every element taken from
    the right half counts the left-half elements still pending, computed
    in bulk with ``searchsorted`` on the (sorted) halves.
    """
    a = np.asarray(seq, dtype=np.int64).copy()
    n = a.shape[0]
    if n < 2:
        return 0
    inversions = 0
    width = 1
    buf = np.empty_like(a)
    while width < n:
        for lo in range(0, n - width, 2 * width):
            mid = lo + width
            hi = min(lo + 2 * width, n)
            left, right = a[lo:mid], a[mid:hi]
            # Each right element r jumps the left elements > r that are
            # still unmerged; with both halves sorted, that is
            # len(left) - searchsorted(left, r, 'right') ... summed:
            pos = np.searchsorted(left, right, side="right")
            inversions += int(left.shape[0] * right.shape[0] - pos.sum())
            # Merge via a stable sort of the concatenation (both halves
            # already sorted, so this is effectively the merge step).
            concat = np.concatenate([left, right])
            buf[lo:hi] = concat[np.argsort(concat, kind="stable")]
            a[lo:hi] = buf[lo:hi]
        width *= 2
    return inversions


def kendall_tau_distance(a: Trial, b: Trial) -> float:
    """Normalized Kendall tau distance between two trials' orderings.

    Computed over the common packets (as Eq. 2 is): 0 when the common
    packets arrive in the same order, 1 when in exactly opposite order.
    """
    m = match_trials(a, b)
    n = m.n_common
    if n < 2:
        return 0.0
    seq = m.a_ranks_in_b_order()
    max_pairs = n * (n - 1) // 2
    return count_inversions(seq) / max_pairs
