"""The :class:`Trial` record type used by all Section-3 metrics.

A *trial* in the paper is "a sequence of packets received by a receiver".
Each packet carries a unique identifier (the paper stamps a 16-byte trailer
tag in the replayer — see :mod:`repro.analysis.tagging`) and a receive
timestamp.  The metric layer never needs packet payloads: everything in
Section 3 is a function of ``(tag sequence, timestamp sequence)``.

The data layout is structure-of-arrays (one int64 tag array, one float64
timestamp array) so that all metric computations stay vectorized, per the
HPC guidance this project follows.  Index order *is* arrival order;
timestamps are non-decreasing along it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Trial"]


@dataclass(frozen=True)
class Trial:
    """An ordered sequence of received packets.

    Parameters
    ----------
    tags:
        int64 array of per-packet identifiers.  Tags need not be unique:
        duplicate payloads are permitted and are disambiguated by occurrence
        rank during matching (see :func:`repro.core.matching.match_trials`),
        exactly as Section 3 describes ("where packets are completely
        identical in data, they can be tagged with their occurrence").
    times_ns:
        float64 array of receive timestamps in nanoseconds, non-decreasing.
    label:
        Optional human-readable run label, e.g. ``"A"`` or ``"run-3"``.
    meta:
        Free-form metadata (environment name, rate, replayer count, ...).
    """

    tags: np.ndarray
    times_ns: np.ndarray
    label: str = ""
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        tags = np.ascontiguousarray(self.tags, dtype=np.int64)
        times = np.ascontiguousarray(self.times_ns, dtype=np.float64)
        if tags.ndim != 1 or times.ndim != 1:
            raise ValueError("tags and times_ns must be one-dimensional")
        if tags.shape[0] != times.shape[0]:
            raise ValueError(
                f"tags ({tags.shape[0]}) and times_ns ({times.shape[0]}) "
                "must have equal length"
            )
        if times.size and np.any(np.diff(times) < 0):
            raise ValueError(
                "times_ns must be non-decreasing: a trial is the sequence of "
                "packets in arrival order"
            )
        if times.size and not np.all(np.isfinite(times)):
            raise ValueError("times_ns must be finite")
        object.__setattr__(self, "tags", tags)
        object.__setattr__(self, "times_ns", times)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.tags.shape[0])

    @property
    def is_empty(self) -> bool:
        """True when the trial contains no packets."""
        return len(self) == 0

    @property
    def start_ns(self) -> float:
        """Arrival time of the first packet (``t_X0`` in the paper)."""
        if self.is_empty:
            raise ValueError("empty trial has no start time")
        return float(self.times_ns[0])

    @property
    def end_ns(self) -> float:
        """Arrival time of the last packet (``t_X|X|`` in the paper)."""
        if self.is_empty:
            raise ValueError("empty trial has no end time")
        return float(self.times_ns[-1])

    @property
    def duration_ns(self) -> float:
        """Span from first to last arrival, in nanoseconds."""
        return self.end_ns - self.start_ns

    # ------------------------------------------------------------------
    # Derived per-packet series used by the metrics
    # ------------------------------------------------------------------
    def relative_times_ns(self) -> np.ndarray:
        """Arrival times relative to the trial start (``l`` in Eq. 3)."""
        if self.is_empty:
            return np.empty(0, dtype=np.float64)
        return self.times_ns - self.times_ns[0]

    def iats_ns(self) -> np.ndarray:
        """Per-packet inter-arrival gaps (``g`` in Eq. 4).

        The paper defines the base case ``t_X0 = t_X(-1)`` so the first
        packet's gap is zero; the returned array has the same length as the
        trial with element 0 equal to 0.
        """
        if self.is_empty:
            return np.empty(0, dtype=np.float64)
        gaps = np.empty(len(self), dtype=np.float64)
        gaps[0] = 0.0
        np.subtract(self.times_ns[1:], self.times_ns[:-1], out=gaps[1:])
        return gaps

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrival_events(
        cls,
        tags: np.ndarray,
        times_ns: np.ndarray,
        label: str = "",
        meta: dict | None = None,
    ) -> "Trial":
        """Build a trial from unordered arrival events.

        Events are sorted by timestamp; ties keep the input order
        (stable sort), matching how a receiver that timestamps on a shared
        clock would enqueue simultaneous arrivals.
        """
        tags = np.asarray(tags, dtype=np.int64)
        times_ns = np.asarray(times_ns, dtype=np.float64)
        order = np.argsort(times_ns, kind="stable")
        return cls(tags[order], times_ns[order], label=label, meta=dict(meta or {}))

    def relabel(self, label: str) -> "Trial":
        """Return the same trial under a new label (arrays are shared)."""
        return Trial(self.tags, self.times_ns, label=label, meta=dict(self.meta))

    def head(self, n: int) -> "Trial":
        """First ``n`` packets as a new trial (arrays are views)."""
        return Trial(self.tags[:n], self.times_ns[:n], label=self.label, meta=dict(self.meta))

    def drop_packets(self, indices) -> "Trial":
        """Return a trial with the packets at ``indices`` removed."""
        mask = np.ones(len(self), dtype=bool)
        mask[np.asarray(indices, dtype=np.intp)] = False
        return Trial(
            self.tags[mask], self.times_ns[mask], label=self.label, meta=dict(self.meta)
        )

    def shift_ns(self, delta_ns: float) -> "Trial":
        """Return a trial with every timestamp shifted by ``delta_ns``."""
        return Trial(
            self.tags, self.times_ns + float(delta_ns), label=self.label, meta=dict(self.meta)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = f" {self.label!r}" if self.label else ""
        if self.is_empty:
            return f"Trial{name}(empty)"
        return (
            f"Trial{name}({len(self)} pkts, "
            f"{self.duration_ns / 1e6:.3f} ms span)"
        )
