"""Section-3 consistency metrics — the paper's primary contribution.

Public surface:

* :class:`~repro.core.trial.Trial` — a received packet sequence.
* :func:`~repro.core.uniqueness.uniqueness_variation` — ``U`` (Eq. 1).
* :func:`~repro.core.ordering.ordering_variation` — ``O`` (Eq. 2).
* :func:`~repro.core.latency.latency_variation` — ``L`` (Eq. 3).
* :func:`~repro.core.iat.iat_variation` — ``I`` (Eq. 4).
* :class:`~repro.core.kappa.MetricVector` / ``κ`` — Eq. 5.
* :func:`~repro.core.report.compare_trials` /
  :func:`~repro.core.report.compare_series` — one-call analysis drivers.
"""

from .histograms import DeltaHistogram, SymlogBins, pct_within, pct_within_from_counts
from .iat import (
    iat_deltas_ns,
    iat_denominator_ns,
    iat_from_deltas,
    iat_variation,
    max_iat_construction,
)
from .kappa import KappaScaling, MetricVector, kappa_from_components, kappa_from_vector
from .kendall import count_inversions, kendall_tau_distance
from .latency import (
    latency_deltas_ns,
    latency_from_deltas,
    latency_span_ns,
    latency_variation,
    max_latency_construction,
)
from .matching import Matching, match_trials, occurrence_ranks
from .ordering import (
    EditScript,
    MoveDistanceStats,
    edit_script,
    edit_script_from_matching,
    longest_increasing_subsequence,
    move_distance_stats,
    naive_lcs_length,
    ordering_variation,
)
from .gapreplay import (
    cumulative_latency_ns,
    iat_deviation_ns,
    mean_absolute_iat_delta_ns,
    mean_absolute_latency_delta_ns,
)
from .reorder import ReorderBySpacing, reorder_probability_by_spacing
from .report import PairReport, RunSeriesReport, compare_series, compare_trials
from .trial import Trial
from .windows import WindowedDeviation, deviation_from_deltas, windowed_deviation
from .uniqueness import uniqueness_variation

__all__ = [
    "Trial",
    "Matching",
    "match_trials",
    "occurrence_ranks",
    "uniqueness_variation",
    "ordering_variation",
    "longest_increasing_subsequence",
    "naive_lcs_length",
    "EditScript",
    "edit_script",
    "edit_script_from_matching",
    "MoveDistanceStats",
    "move_distance_stats",
    "latency_variation",
    "latency_deltas_ns",
    "latency_span_ns",
    "latency_from_deltas",
    "max_latency_construction",
    "iat_variation",
    "iat_deltas_ns",
    "iat_denominator_ns",
    "iat_from_deltas",
    "max_iat_construction",
    "MetricVector",
    "KappaScaling",
    "kappa_from_vector",
    "kappa_from_components",
    "count_inversions",
    "kendall_tau_distance",
    "SymlogBins",
    "DeltaHistogram",
    "pct_within",
    "pct_within_from_counts",
    "cumulative_latency_ns",
    "iat_deviation_ns",
    "mean_absolute_latency_delta_ns",
    "mean_absolute_iat_delta_ns",
    "ReorderBySpacing",
    "reorder_probability_by_spacing",
    "PairReport",
    "RunSeriesReport",
    "compare_trials",
    "compare_series",
    "WindowedDeviation",
    "windowed_deviation",
    "deviation_from_deltas",
]
