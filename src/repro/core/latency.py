"""The latency-variation metric ``L`` (Equation 3).

For each common packet ``p_i`` with positions ``j`` in A and ``k`` in B,
its relative latencies are ``l_Ai = t_Aj − t_A0`` and ``l_Bi = t_Bk − t_B0``
(arrival time minus the trial's first arrival).  The numerator is the
cumulative latency deviation used by GapReplay:

.. math::

    \\sum_i \\, \\mathrm{abs}(l_{Ai} - l_{Bi})

The paper's contribution is the normalizer: the maximum possible value
occurs when all common packets arrive at one end of A and the opposite end
of B (Figure 2), bounding each term by
``max(t_{B|B|} − t_{A0},\\ t_{A|A|} − t_{B0})``, hence

.. math::

    L_{AB} = \\frac{\\sum_i \\mathrm{abs}(l_{Ai} - l_{Bi})}
                  {|A \\cap B| \\cdot \\max(t_{B|B|} - t_{A0},\\ t_{A|A|} - t_{B0})}

Note the normalizer uses *absolute* trial endpoints, so trials must be
timestamped on a comparable clock (the recorder's clock in the paper's
setup, PTP-disciplined across nodes).

**Erratum-level extension.**  As printed, the denominator is not a true
supremum: when one trial nests strictly inside the other's time span
(e.g. A = {p₀@0, p₁@2}, B = {p₁@1}), a common packet's relative-latency
difference can reach ``max(span_A, span_B)``, which exceeds both cross
spans, and Equation 3 evaluates above 1.  Property-based testing surfaced
the counterexample.  We therefore take

.. math::

    \\max(t_{B|B|} - t_{A0},\\ t_{A|A|} - t_{B0},\\ \\mathrm{span}_A,\\ \\mathrm{span}_B)

which equals the paper's value whenever the trials overlap (the paper's
aligned-capture regime — each capture starts at its replay epoch) and
restores the [0, 1] guarantee in general.
"""

from __future__ import annotations

import numpy as np

from .matching import Matching, match_trials
from .trial import Trial

__all__ = [
    "latency_deltas_ns",
    "latency_span_ns",
    "latency_from_deltas",
    "latency_from_matching",
    "latency_variation",
    "max_latency_construction",
]


def latency_deltas_ns(a: Trial, b: Trial, matching: Matching | None = None) -> np.ndarray:
    """Signed per-packet latency deltas ``l_B − l_A`` for common packets.

    These are the series plotted in the paper's latency-delta histograms
    (Figures 4b, 6b, 7b, 8b, 10b).  Order follows A's arrival order.
    """
    m = matching if matching is not None else match_trials(a, b)
    if m.n_common == 0:
        return np.empty(0, dtype=np.float64)
    l_a = a.times_ns[m.idx_a] - a.times_ns[0]
    l_b = b.times_ns[m.idx_b] - b.times_ns[0]
    return l_b - l_a


def latency_span_ns(a: Trial, b: Trial) -> float:
    """The Equation 3 normalizing span (extended with per-trial spans).

    Paper denominator extended with the per-trial spans — identical in
    the aligned-capture regime, a true bound in general (module docs).
    Both trials must be non-empty.
    """
    return max(
        b.end_ns - a.start_ns,
        a.end_ns - b.start_ns,
        a.duration_ns,
        b.duration_ns,
    )


def latency_from_deltas(deltas: np.ndarray, n_common: int, span_ns: float) -> float:
    """Equation 3 from precomputed signed latency deltas and the span.

    This is the single reduction both the batch and the parallel path run:
    the parallel engine assembles the full delta array from its shards and
    calls this exact function, so the two paths are bit-identical.
    """
    if n_common == 0:
        return 0.0
    if span_ns <= 0.0:
        # All common packets are simultaneous: either both trials are a
        # single instant (zero deviation) or the data is degenerate; in both
        # cases there is no latency inconsistency to report.
        return 0.0
    return float(np.abs(deltas).sum() / (n_common * span_ns))


def latency_from_matching(a: Trial, b: Trial, m: Matching) -> float:
    """Equation 3 from a precomputed matching."""
    if m.n_common == 0:
        return 0.0
    deltas = latency_deltas_ns(a, b, matching=m)
    return latency_from_deltas(deltas, m.n_common, latency_span_ns(a, b))


def latency_variation(a: Trial, b: Trial) -> float:
    """Equation 3: normalized variation in latency (jitter) between trials."""
    return latency_from_matching(a, b, match_trials(a, b))


def max_latency_construction(n: int, span_ns: float = 1e6) -> tuple[Trial, Trial]:
    """Build the Figure 2 worst case, where ``L`` attains exactly 1.

    The common packets arrive at the very *end* of trial A but the very
    *start* of trial B; a non-common marker packet pins the opposite end of
    each trial so both trials span ``span_ns``.  Every common packet then
    has relative latency ``span_ns`` in A and 0 in B, and the normalizer
    ``max(t_{B|B|} − t_{A0}, t_{A|A|} − t_{B0})`` equals ``span_ns``, so
    ``L = 1``.  The property tests use this to validate that the bound is
    attained and never exceeded.

    Returns the two trials (A, B) with ``n`` common packets each plus one
    marker packet.
    """
    if n < 1:
        raise ValueError("need at least one common packet")
    if span_ns <= 0:
        raise ValueError("span_ns must be positive")
    tags = np.arange(n, dtype=np.int64)
    marker_a, marker_b = np.int64(-1), np.int64(-2)
    a = Trial(
        np.concatenate([[marker_a], tags]),
        np.concatenate([[0.0], np.full(n, span_ns)]),
        label="maxL-A",
    )
    b = Trial(
        np.concatenate([tags, [marker_b]]),
        np.concatenate([np.zeros(n), [span_ns]]),
        label="maxL-B",
    )
    return a, b
