"""The uniqueness-variation metric ``U`` (Equation 1).

.. math::

    U_{AB} = 1 - \\frac{2\\,|A \\cap B|}{|A| + |B|}

``U`` measures how much the two trials' packet *sets* overlap: drops,
corrupted packets, and spurious extras all reduce the overlap.  It is
symmetric, 0 when the trials carry exactly the same packets, and 1 when
they share none.

The paper's worked example: a 10-packet trial A against a trial B that
dropped one packet gives ``U = (10 + 9 - 2*9) / (10 + 9) = 1/19``.
"""

from __future__ import annotations

from .matching import Matching, match_trials
from .trial import Trial

__all__ = ["uniqueness_variation", "uniqueness_from_matching"]


def uniqueness_from_matching(m: Matching) -> float:
    """Compute ``U`` from a precomputed :class:`Matching`.

    Two empty trials are defined as perfectly consistent (``U = 0``) —
    there is nothing to disagree about; this also keeps the metric
    continuous as trial sizes shrink to zero together.
    """
    total = m.len_a + m.len_b
    if total == 0:
        return 0.0
    return 1.0 - (2.0 * m.n_common) / total


def uniqueness_variation(a: Trial, b: Trial) -> float:
    """Equation 1: normalized variation in packet uniqueness between trials."""
    return uniqueness_from_matching(match_trials(a, b))
