"""Packet matching between two trials (the ``A ∩ B`` of Section 3).

Two packets are "the same" when they are identical in all regions the
evaluator determines define a packet — here, the per-packet tag.  Tags may
repeat (identical payloads); following the paper, repeated tags are
disambiguated by *occurrence rank*: the first packet with a given tag in a
trial matches the first packet with that tag in the other trial, the second
the second, and so on.  This makes every trial a sequence of unique
``(tag, occurrence)`` keys, which is what lets the ordering metric treat
trials as permutations.

Everything here is vectorized, built on one stable argsort per side: the
sorted tag arrays expose each tag's occurrence group as a contiguous run,
matched tags are found with one :func:`numpy.searchsorted`, and pairing the
first ``min(count_A, count_B)`` occurrences of every matched tag is a
grouped ``arange``.  (An earlier version packed ``(tag id, occurrence)``
into 64-bit keys and ran :func:`numpy.intersect1d` — two extra sorts and a
key-space overflow guard for the identical pair set.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics
from .trial import Trial

__all__ = ["Matching", "occurrence_ranks", "match_tag_arrays", "match_trials"]


def occurrence_ranks(tags: np.ndarray) -> np.ndarray:
    """Occurrence rank of each element among equal values, in input order.

    ``occurrence_ranks([7, 3, 7, 7, 3]) == [0, 0, 1, 2, 1]``.

    Runs in O(n log n) with no Python-level loop.
    """
    tags = np.asarray(tags)
    n = tags.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(tags, kind="stable")
    sorted_tags = tags[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_tags[1:], sorted_tags[:-1], out=new_group[1:])
    group_start = np.flatnonzero(new_group)
    # Position within the sorted array minus the start of the packet's
    # group gives the rank; stable sort preserves input order within groups.
    counts = np.diff(np.append(group_start, n))
    ranks_sorted = np.arange(n, dtype=np.int64) - np.repeat(group_start, counts)
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


@dataclass(frozen=True)
class Matching:
    """The aligned common packets of two trials.

    ``idx_a[i]`` and ``idx_b[i]`` are the positions (in arrival order) of
    the *same* packet ``p_i`` in trials A and B.  Rows are sorted by
    ``idx_a``, i.e. common packets are listed in A's arrival order.

    Attributes
    ----------
    idx_a, idx_b:
        intp arrays of equal length ``n_common``.
    len_a, len_b:
        The full trial sizes ``|A|`` and ``|B|``.
    """

    idx_a: np.ndarray
    idx_b: np.ndarray
    len_a: int
    len_b: int
    #: Lazily cached stable argsort of ``idx_b`` — ``b_order`` and
    #: ``a_ranks_in_b_order`` both need it, and the parallel engine asks
    #: for it again when deriving the ordering permutation; memoizing on
    #: the (frozen, immutable-by-contract) matching makes it one argsort
    #: per pair (``match.b_order_argsorts`` counts the computes).
    _order_b_cache: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_common(self) -> int:
        """``|A ∩ B|``."""
        return int(self.idx_a.shape[0])

    @property
    def is_permutation(self) -> bool:
        """True when A and B contain exactly the same packets."""
        return self.n_common == self.len_a == self.len_b

    def _order_b(self) -> np.ndarray:
        """The stable argsort of ``idx_b``, computed once per matching."""
        cached = self._order_b_cache
        if cached is None:
            metrics.counter("match.b_order_argsorts").add()
            cached = np.argsort(self.idx_b, kind="stable")
            object.__setattr__(self, "_order_b_cache", cached)
        return cached

    def b_order(self) -> tuple[np.ndarray, np.ndarray]:
        """The aligned index pairs re-sorted by position in B."""
        order = self._order_b()
        return self.idx_a[order], self.idx_b[order]

    def a_ranks_in_b_order(self) -> np.ndarray:
        """A-side common-packet ranks listed in B's arrival order.

        This is the integer sequence whose Longest Increasing Subsequence
        is the LCS of the two trials (Section 3, citing Schensted): rows of
        the matching are already ranked 0..n_common-1 by A position, so
        re-listing those ranks in B order yields a permutation of
        ``0..n_common-1``.
        """
        # Rows are sorted by idx_a, so the row index *is* the A-side rank;
        # listing row indices in B order therefore lists A ranks in B order.
        return self._order_b().astype(np.int64, copy=False)


def match_tag_arrays(
    tags_a: np.ndarray, tags_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Aligned ``(tag, occurrence)`` index pairs of two tag sequences.

    The computational core of :func:`match_trials`, exposed separately so
    the sharded matcher (:mod:`repro.parallel.matchshard`) can run the
    *identical* operations on tag subsets: occurrence ranks are computed
    among equal tags only, so restricting both sequences to any set of tag
    values yields exactly the rows of the full matching whose tags fall in
    that set.

    One stable argsort per side is the whole cost model.  The stable sort
    groups equal tags into contiguous runs *in input order*, so the k-th
    element of tag t's run is the k-th occurrence of t — pairing the first
    ``min(count_A, count_B)`` run elements of every tag present on both
    sides yields exactly the ``(tag, occurrence)`` pair set the Section-3
    matching defines, with no key packing and no overflow regime.

    Returns ``(ia, ib)``: intp position arrays sorted by ``ia``.
    """
    na, nb = tags_a.shape[0], tags_b.shape[0]
    if na == 0 or nb == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty

    sa = np.argsort(tags_a, kind="stable")
    sb = np.argsort(tags_b, kind="stable")
    sorted_a = tags_a[sa]
    sorted_b = tags_b[sb]

    # Group boundaries of equal-tag runs in each sorted array.
    new_a = np.empty(na, dtype=bool)
    new_a[0] = True
    np.not_equal(sorted_a[1:], sorted_a[:-1], out=new_a[1:])
    starts_a = np.flatnonzero(new_a)
    vals_a = sorted_a[starts_a]
    counts_a = np.diff(np.append(starts_a, na))

    new_b = np.empty(nb, dtype=bool)
    new_b[0] = True
    np.not_equal(sorted_b[1:], sorted_b[:-1], out=new_b[1:])
    starts_b = np.flatnonzero(new_b)
    vals_b = sorted_b[starts_b]
    counts_b = np.diff(np.append(starts_b, nb))

    # Tags present on both sides: for each B group, the A group holding
    # the same value (if any).
    pos = np.searchsorted(vals_a, vals_b)
    in_range = np.flatnonzero(pos < vals_a.size)
    bsel = in_range[vals_a[pos[in_range]] == vals_b[in_range]]
    asel = pos[bsel]

    # Occurrence pairing: the first min(count_A, count_B) elements of each
    # matched run, generated with one grouped arange across all tags.
    take = np.minimum(counts_a[asel], counts_b[bsel])
    total = int(take.sum())
    group = np.repeat(np.arange(take.size), take)
    occ = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(take) - take, take)
    ia = sa[starts_a[asel][group] + occ]
    ib = sb[starts_b[bsel][group] + occ]

    order = np.argsort(ia, kind="stable")
    return (
        ia[order].astype(np.intp, copy=False),
        ib[order].astype(np.intp, copy=False),
    )


def match_trials(a: Trial, b: Trial) -> Matching:
    """Compute the aligned common packets of two trials.

    Packets are keyed by ``(tag, occurrence rank)``.  The result lists
    common packets in A's arrival order.
    """
    ia, ib = match_tag_arrays(a.tags, b.tags)
    return Matching(ia, ib, len(a), len(b))
