"""Packet matching between two trials (the ``A ∩ B`` of Section 3).

Two packets are "the same" when they are identical in all regions the
evaluator determines define a packet — here, the per-packet tag.  Tags may
repeat (identical payloads); following the paper, repeated tags are
disambiguated by *occurrence rank*: the first packet with a given tag in a
trial matches the first packet with that tag in the other trial, the second
the second, and so on.  This makes every trial a sequence of unique
``(tag, occurrence)`` keys, which is what lets the ordering metric treat
trials as permutations.

Everything here is vectorized: occurrence ranks come from a stable argsort
and a grouped ``arange``, and the intersection is a single
:func:`numpy.intersect1d` over packed 64-bit keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trial import Trial

__all__ = ["Matching", "occurrence_ranks", "match_tag_arrays", "match_trials"]


def occurrence_ranks(tags: np.ndarray) -> np.ndarray:
    """Occurrence rank of each element among equal values, in input order.

    ``occurrence_ranks([7, 3, 7, 7, 3]) == [0, 0, 1, 2, 1]``.

    Runs in O(n log n) with no Python-level loop.
    """
    tags = np.asarray(tags)
    n = tags.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(tags, kind="stable")
    sorted_tags = tags[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_tags[1:], sorted_tags[:-1], out=new_group[1:])
    group_start = np.flatnonzero(new_group)
    # Position within the sorted array minus the start of the packet's
    # group gives the rank; stable sort preserves input order within groups.
    counts = np.diff(np.append(group_start, n))
    ranks_sorted = np.arange(n, dtype=np.int64) - np.repeat(group_start, counts)
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


@dataclass(frozen=True)
class Matching:
    """The aligned common packets of two trials.

    ``idx_a[i]`` and ``idx_b[i]`` are the positions (in arrival order) of
    the *same* packet ``p_i`` in trials A and B.  Rows are sorted by
    ``idx_a``, i.e. common packets are listed in A's arrival order.

    Attributes
    ----------
    idx_a, idx_b:
        intp arrays of equal length ``n_common``.
    len_a, len_b:
        The full trial sizes ``|A|`` and ``|B|``.
    """

    idx_a: np.ndarray
    idx_b: np.ndarray
    len_a: int
    len_b: int

    @property
    def n_common(self) -> int:
        """``|A ∩ B|``."""
        return int(self.idx_a.shape[0])

    @property
    def is_permutation(self) -> bool:
        """True when A and B contain exactly the same packets."""
        return self.n_common == self.len_a == self.len_b

    def b_order(self) -> tuple[np.ndarray, np.ndarray]:
        """The aligned index pairs re-sorted by position in B."""
        order = np.argsort(self.idx_b, kind="stable")
        return self.idx_a[order], self.idx_b[order]

    def a_ranks_in_b_order(self) -> np.ndarray:
        """A-side common-packet ranks listed in B's arrival order.

        This is the integer sequence whose Longest Increasing Subsequence
        is the LCS of the two trials (Section 3, citing Schensted): rows of
        the matching are already ranked 0..n_common-1 by A position, so
        re-listing those ranks in B order yields a permutation of
        ``0..n_common-1``.
        """
        # Rows are sorted by idx_a, so the row index *is* the A-side rank;
        # listing row indices in B order therefore lists A ranks in B order.
        order_b = np.argsort(self.idx_b, kind="stable")
        return order_b.astype(np.int64, copy=False)


def match_tag_arrays(
    tags_a: np.ndarray, tags_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Aligned ``(tag, occurrence)`` index pairs of two tag sequences.

    The computational core of :func:`match_trials`, exposed separately so
    the sharded matcher (:mod:`repro.parallel.matchshard`) can run the
    *identical* operations on tag subsets: occurrence ranks are computed
    among equal tags only, so restricting both sequences to any set of tag
    values yields exactly the rows of the full matching whose tags fall in
    that set.

    Returns ``(ia, ib)``: intp position arrays sorted by ``ia``.
    """
    na, nb = tags_a.shape[0], tags_b.shape[0]
    if na == 0 or nb == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty

    all_tags = np.concatenate([tags_a, tags_b])
    _, inverse = np.unique(all_tags, return_inverse=True)
    ids_a = inverse[:na].astype(np.int64, copy=False)
    ids_b = inverse[na:].astype(np.int64, copy=False)

    occ_a = occurrence_ranks(ids_a)
    occ_b = occurrence_ranks(ids_b)

    max_occ = int(max(occ_a.max(initial=0), occ_b.max(initial=0))) + 1
    n_ids = int(inverse.max()) + 1
    if n_ids * max_occ >= np.iinfo(np.int64).max:
        raise OverflowError(
            f"key space {n_ids} ids x {max_occ} occurrences overflows int64"
        )

    key_a = ids_a * max_occ + occ_a
    key_b = ids_b * max_occ + occ_b
    _, ia, ib = np.intersect1d(key_a, key_b, assume_unique=True, return_indices=True)

    order = np.argsort(ia, kind="stable")
    return (
        ia[order].astype(np.intp, copy=False),
        ib[order].astype(np.intp, copy=False),
    )


def match_trials(a: Trial, b: Trial) -> Matching:
    """Compute the aligned common packets of two trials.

    Packets are keyed by ``(tag, occurrence rank)``.  The result lists
    common packets in A's arrival order.

    Raises
    ------
    OverflowError
        If the packed 64-bit key space would overflow (requires more than
        ~3e9 distinct tags × occurrences, far beyond any realistic trial).
    """
    ia, ib = match_tag_arrays(a.tags, b.tags)
    return Matching(ia, ib, len(a), len(b))
