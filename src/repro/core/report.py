"""High-level comparison drivers: one pair, and a run-series vs baseline.

The paper's workflow is always the same: record one baseline run (A), run
the replay several more times (B, C, D, E, ...), and compare every repeat
to A.  :func:`compare_trials` produces the full Section-3 analysis for one
pair; :class:`RunSeriesReport` aggregates a whole series, producing the
per-run rows quoted in Sections 6-7 and the mean rows of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .fusedpass import fused_timings
from .histograms import DeltaHistogram, SymlogBins
from .kappa import KappaScaling, MetricVector
from .matching import match_trials
from .ordering import (
    MoveDistanceStats,
    edit_script,
    ordering_from_matching,
)
from .trial import Trial
from .uniqueness import uniqueness_from_matching

__all__ = ["PairReport", "compare_trials", "RunSeriesReport", "compare_series"]


@dataclass(frozen=True)
class PairReport:
    """Everything Section 3 extracts from one (baseline, run) pair."""

    baseline_label: str
    run_label: str
    metrics: MetricVector
    n_baseline: int
    n_run: int
    n_common: int
    pct_iat_within_10ns: float
    move_stats: MoveDistanceStats
    iat_hist: DeltaHistogram
    latency_hist: DeltaHistogram
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def kappa(self) -> float:
        """Equation 5 for this pair."""
        return self.metrics.kappa()

    def kappa_scaled(self, scaling: KappaScaling) -> float:
        """Equation 5 under a Section-8.2 weighting/scaling refinement."""
        return self.metrics.kappa(scaling)

    @property
    def n_missing(self) -> int:
        """Baseline packets absent from the run (drops, as counted in §7.1)."""
        return self.n_baseline - self.n_common

    def row(self) -> dict:
        """A flat dict row for table rendering."""
        return {
            "run": self.run_label,
            "U": self.metrics.u,
            "O": self.metrics.o,
            "I": self.metrics.i,
            "L": self.metrics.l,
            "kappa": self.kappa,
            "pct_iat_10ns": self.pct_iat_within_10ns,
            "n_common": self.n_common,
            "n_missing": self.n_missing,
        }


def compare_trials(
    baseline: Trial,
    run: Trial,
    bins: SymlogBins | None = None,
    within_ns: float = 10.0,
) -> PairReport:
    """Full Section-3 comparison of ``run`` against ``baseline``.

    Computes the matching once and derives all four metrics, κ, the ±10 ns
    IAT statistic, the Table-1 move-distance statistics, and both figure
    histograms from it.  The timing side runs through the fused kernel
    (:mod:`repro.core.fusedpass`) — one walk over the matched rows instead
    of four per-component passes; bit-identical output, which
    ``tests/test_fusedpass.py`` pins against the per-component functions.
    """
    bins = bins if bins is not None else SymlogBins()
    m = match_trials(baseline, run)
    script = edit_script(baseline, run, matching=m)

    u = uniqueness_from_matching(m)
    o = ordering_from_matching(m, script)
    fused = fused_timings(baseline, run, m, bins=bins, within_ns=within_ns)

    return PairReport(
        baseline_label=baseline.label,
        run_label=run.label,
        metrics=MetricVector(u, o, fused.l, fused.i),
        n_baseline=len(baseline),
        n_run=len(run),
        n_common=m.n_common,
        pct_iat_within_10ns=fused.pct_iat_within,
        move_stats=MoveDistanceStats.from_distances(script.moved_distances),
        iat_hist=DeltaHistogram.from_counts(
            fused.iat_counts, m.n_common, bins, label=run.label
        ),
        latency_hist=DeltaHistogram.from_counts(
            fused.lat_counts, m.n_common, bins, label=run.label
        ),
        meta={"baseline": dict(baseline.meta), "run": dict(run.meta)},
    )


@dataclass(frozen=True)
class RunSeriesReport:
    """All repeat runs of an environment compared against the baseline run."""

    environment: str
    baseline_label: str
    pairs: tuple[PairReport, ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("a run series needs at least one repeat run")

    # -- per-run accessors (the Sections 6-7 quoted lists) ---------------
    def values(self, component: str) -> np.ndarray:
        """Per-run values of one metric: 'U', 'O', 'L', 'I' or 'kappa'."""
        comp = component.lower()
        if comp == "kappa":
            return np.array([p.kappa for p in self.pairs])
        if comp in ("u", "o", "l", "i"):
            return np.array([getattr(p.metrics, comp) for p in self.pairs])
        raise KeyError(f"unknown metric component {component!r}")

    def pct_iat_within_10ns(self) -> np.ndarray:
        """Per-run % of packets within ±10 ns IAT delta of the baseline."""
        return np.array([p.pct_iat_within_10ns for p in self.pairs])

    # -- aggregate row (Table 2) -----------------------------------------
    def mean_row(self) -> dict:
        """The environment's Table-2 row: mean U, O, I, L and κ."""
        return {
            "environment": self.environment,
            "U": float(self.values("U").mean()),
            "O": float(self.values("O").mean()),
            "I": float(self.values("I").mean()),
            "L": float(self.values("L").mean()),
            "kappa": float(self.values("kappa").mean()),
        }

    def run_rows(self) -> list[dict]:
        """Per-run rows, as the running text of Sections 6-7 reports them."""
        return [p.row() for p in self.pairs]


def compare_series(
    trials: list[Trial],
    environment: str = "",
    bins: SymlogBins | None = None,
) -> RunSeriesReport:
    """Compare ``trials[1:]`` against the baseline ``trials[0]``.

    Mirrors the paper's protocol: the first run is A, later runs are
    labelled B, C, D, E, ... if they carry no label of their own.
    """
    if len(trials) < 2:
        raise ValueError("need a baseline plus at least one repeat run")
    bins = bins if bins is not None else SymlogBins()
    baseline = trials[0]
    if not baseline.label:
        baseline = baseline.relabel("A")
    pairs = []
    for k, run in enumerate(trials[1:]):
        if not run.label:
            run = run.relabel(chr(ord("B") + k) if k < 25 else f"run{k + 1}")
        pairs.append(compare_trials(baseline, run, bins=bins))
    return RunSeriesReport(
        environment=environment,
        baseline_label=baseline.label,
        pairs=tuple(pairs),
    )
