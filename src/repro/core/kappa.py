"""The compound consistency score ``κ`` (Equation 5) and its extensions.

The four normalized variations form a vector ``v = ⟨U, O, L, I⟩ ∈ [0,1]^4``
whose magnitude lies in ``[0, 2]``; the paper scales this to

.. math::

    \\kappa_{AB} = 1 - \\frac{\\sqrt{U^2 + O^2 + L^2 + I^2}}{2}

so that 1 is complete consistency and 0 complete inconsistency.

Section 8.2 sketches two future-work refinements, both implemented here so
they can be ablated:

* **per-component weights** — the paper observes that in its environments
  ``I`` (varying within 1e-1) linearly overpowers ``L`` (within 1e-5);
* **nonlinear scaling** — a sub-linear exponent on ``U`` and/or ``O`` so
  that "the presence of any drops [or reordering] more heavily impacts the
  score".

Both default to the paper's plain Equation 5 behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MetricVector",
    "kappa_from_vector",
    "kappa_from_components",
    "KappaScaling",
]


@dataclass(frozen=True)
class KappaScaling:
    """Optional Section-8.2 refinements applied before combining metrics.

    Each component is transformed as ``weight * value ** exponent``; because
    values lie in [0, 1], exponents below 1 amplify small inconsistencies
    (e.g. ``u_exponent=0.5`` makes any drop count more) and weights rescale
    a component's reach.  Weights above 1 would break the [0, 1] range of
    κ and are rejected.
    """

    u_weight: float = 1.0
    o_weight: float = 1.0
    l_weight: float = 1.0
    i_weight: float = 1.0
    u_exponent: float = 1.0
    o_exponent: float = 1.0
    l_exponent: float = 1.0
    i_exponent: float = 1.0

    def __post_init__(self) -> None:
        for name in ("u_weight", "o_weight", "l_weight", "i_weight"):
            w = getattr(self, name)
            if not 0.0 <= w <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {w}")
        for name in ("u_exponent", "o_exponent", "l_exponent", "i_exponent"):
            e = getattr(self, name)
            if e <= 0.0:
                raise ValueError(f"{name} must be positive, got {e}")

    def apply(self, u: float, o: float, latency: float, iat: float):
        """Return the transformed ``(U, O, L, I)`` tuple."""
        return (
            self.u_weight * u**self.u_exponent,
            self.o_weight * o**self.o_exponent,
            self.l_weight * latency**self.l_exponent,
            self.i_weight * iat**self.i_exponent,
        )


#: The paper's plain Equation 5 (identity weights and exponents).
PAPER_SCALING = KappaScaling()


@dataclass(frozen=True)
class MetricVector:
    """The 4-dimensional inconsistency vector ``⟨U, O, L, I⟩`` of Section 3.

    **Contract (all comparison paths).**  Every component is a concrete,
    finite float in [0, 1] — never ``None``, never NaN; construction
    enforces this.  A path that cannot compute a component must either
    *guarantee* the component's value through a checked precondition and
    report that exact float, or refuse to produce a vector —
    partially-populated vectors do not exist.  The batch
    (:func:`repro.core.report.compare_trials`), parallel
    (:class:`repro.parallel.ParallelComparator`) and streaming paths all
    honor this: the known-baseline streaming comparator
    (:class:`repro.analysis.streamkappa.StreamKappa`) computes every
    component — including the global-LCS ordering metric, via the
    incremental prefix-patience merge — exactly, while the aligned-only
    fast path (:class:`repro.analysis.streaming.StreamingComparison`)
    *guarantees* U = O = 0 by its checked alignment precondition.
    Vectors from any path therefore mix freely in series aggregation and
    rendering.
    """

    u: float
    o: float
    l: float
    i: float

    def __post_init__(self) -> None:
        for name in ("u", "o", "l", "i"):
            v = getattr(self, name)
            if not np.isfinite(v):
                raise ValueError(f"metric {name.upper()} must be finite, got {v}")
            if v < -1e-12 or v > 1.0 + 1e-9:
                raise ValueError(
                    f"metric {name.upper()} must be normalized to [0, 1], got {v}"
                )

    def as_array(self) -> np.ndarray:
        """The vector as a float64 array ``[U, O, L, I]``."""
        return np.array([self.u, self.o, self.l, self.i], dtype=np.float64)

    @property
    def magnitude(self) -> float:
        """``|v|`` — Euclidean norm, in ``[0, 2]``."""
        return float(np.sqrt(self.u**2 + self.o**2 + self.l**2 + self.i**2))

    def kappa(self, scaling: KappaScaling | None = None) -> float:
        """Equation 5: the [0, 1] consistency score (1 = fully consistent)."""
        if scaling is None:
            return 1.0 - self.magnitude / 2.0
        su, so, sl, si = scaling.apply(self.u, self.o, self.l, self.i)
        return 1.0 - float(np.sqrt(su**2 + so**2 + sl**2 + si**2)) / 2.0

    @property
    def is_identical(self) -> bool:
        """True when the trials compared were exactly identical."""
        return self.magnitude == 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"U={self.u:.4g} O={self.o:.4g} L={self.l:.4g} I={self.i:.4g} "
            f"kappa={self.kappa():.4f}"
        )


def kappa_from_vector(u: float, o: float, latency: float, iat: float,
                      scaling: KappaScaling | None = None) -> float:
    """Equation 5 from the four component values directly."""
    return MetricVector(u, o, latency, iat).kappa(scaling)


def kappa_from_components(
    u, o, latency, iat, scaling: KappaScaling | None = None
) -> np.ndarray:
    """Vectorized Equation 5 over arrays of component values.

    The array twin of :meth:`MetricVector.kappa` for windowed κ series
    (:mod:`repro.analysis.streamkappa`): one κ per element of the input
    arrays, identical arithmetic to the scalar path element for element.
    """
    u = np.asarray(u, dtype=np.float64)
    o = np.asarray(o, dtype=np.float64)
    latency = np.asarray(latency, dtype=np.float64)
    iat = np.asarray(iat, dtype=np.float64)
    if scaling is not None:
        u, o, latency, iat = scaling.apply(u, o, latency, iat)
    return 1.0 - np.sqrt(u**2 + o**2 + latency**2 + iat**2) / 2.0
