"""The ordering-variation metric ``O`` (Equation 2) and its machinery.

Section 3 defines ``O`` through the minimum edit script transforming trial
B into trial A.  Because occurrence-tagging makes every packet unique (see
:mod:`repro.core.matching`), each trial is a permutation of the common
packets, so:

* the Longest Common Subsequence of A and B equals the Longest Increasing
  Subsequence of A-side ranks listed in B order (Schensted), computable in
  ``O(n log n)`` with patience sorting;
* the minimum edit script keeps the LCS in place and moves every other
  common packet; the move distance ``d_i`` of a moved packet is the
  absolute difference between its deletion index (its rank among common
  packets in B) and its reinsertion index (its rank among common packets
  in A).

The normalizer is the reversal worst case,
``sum_{n=0}^{|A∩B|} n = m(m+1)/2``.

Table 1 of the paper reports distributional statistics of the *signed*
move distances (their minima are negative); :func:`move_distance_stats`
reproduces those columns with the convention ``signed d = rank_A − rank_B``
(positive means the packet sits later in A than in B).

When several maximal-length LCSs exist the edit script is not unique; we
deterministically pick the patience-sorting LIS (predecessor chaining),
which is a standard canonical choice.  ``O`` computed with swapped
arguments uses the transposed permutation whose LIS set corresponds
one-to-one, so the metric is symmetric up to LCS tie-breaking; the test
suite checks exact symmetry on permutations with unique LCS and bounded
asymmetry otherwise.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from .matching import Matching, match_trials
from .trial import Trial

__all__ = [
    "longest_increasing_subsequence",
    "lis_membership",
    "patience_fill",
    "lis_indices_from_state",
    "b_order_ranks",
    "EditScript",
    "edit_script",
    "edit_script_from_matching",
    "edit_script_from_keep",
    "move_distance_stats",
    "MoveDistanceStats",
    "ordering_from_matching",
    "ordering_variation",
    "naive_lcs_length",
]


def patience_fill(
    values: list,
    tails_vals: list,
    tails_idx: list[int],
    prev_slice,
    offset: int = 0,
) -> None:
    """Run the patience loop over ``values``, mutating the pile state.

    This is *the* canonical update step — the serial driver, the shard
    workers and the prefix-patience merge's replay fallback
    (:mod:`repro.parallel.ordershard`) all execute this exact function, so
    "parallel equals serial" reduces to an argument about *which* elements
    each call sees, never about arithmetic.

    ``values`` are the elements to process (Python scalars — ``tolist()``
    beats an ndarray loop ~3x); ``tails_vals``/``tails_idx`` are the pile
    state mutated in place (``tails_idx`` holds *global* element indices,
    i.e. ``offset + i``); ``prev_slice[i]`` receives the global predecessor
    index of element ``offset + i``, and keeps its prior value (the ``-1``
    sentinel) for elements landing on pile 0.

    The ``v > last`` branch is a pure fast path, not a second algorithm:
    the tails array is sorted, so ``v > tails_vals[-1]`` holds exactly when
    ``bisect_left`` would return ``len(tails_vals)`` — the append case with
    predecessor ``tails_idx[-1]``.  In the near-sorted permutations the
    paper's regime produces (light jitter, rare reorders) ~90% of elements
    take it, skipping the bisect entirely.
    """
    append_val = tails_vals.append
    append_idx = tails_idx.append
    last = tails_vals[-1] if tails_vals else None
    for i, v in enumerate(values):
        if last is not None and v > last:
            prev_slice[i] = tails_idx[-1]
            append_val(v)
            append_idx(offset + i)
            last = v
            continue
        pos = bisect_left(tails_vals, v)
        if pos > 0:
            prev_slice[i] = tails_idx[pos - 1]
        if pos == len(tails_vals):
            append_val(v)
            append_idx(offset + i)
            last = v
        else:
            tails_vals[pos] = v
            tails_idx[pos] = offset + i
            if pos == len(tails_vals) - 1:
                last = v


#: Below this LIS length the scalar predecessor walk beats the pointer-
#: doubling setup (one ndarray copy of the links plus log2(L) gathers).
_DOUBLING_MIN_LENGTH = 4096


def _lis_indices_doubling(tails_idx, prev: np.ndarray, length: int) -> np.ndarray:
    """The predecessor walk as pointer doubling (binary lifting).

    ``chain[j]`` is the j-step predecessor of the LIS tail.  Each round
    extends the known chain with one gather through the current m-step
    link table (``up``), then squares ``up`` to 2m steps; ``-1`` sentinels
    map to an absorbing slot past the end so squaring never reads out of
    range.  Every link followed is exactly the link the scalar walk
    follows, so the indices are identical — only the traversal order of
    the *reads* changes, never a value.
    """
    n = prev.shape[0]
    up = np.empty(n + 1, dtype=np.int64)
    up[:n] = prev
    up[n] = n
    up[up < 0] = n
    chain = np.empty(length, dtype=np.int64)
    chain[0] = tails_idx[-1]
    done = 1
    while done < length:
        take = min(done, length - done)
        chain[done : done + take] = up[chain[:take]]
        done += take
        if done < length:
            up = up[up]
    out = np.empty(length, dtype=np.intp)
    out[:] = chain[::-1]
    return out


def lis_indices_from_state(tails_idx: list[int], prev: np.ndarray) -> np.ndarray:
    """Walk predecessor links back from the tail of the longest pile.

    Long walks (the paper-scale regime: LIS length close to the row
    count) run as pointer doubling — O(log L) vectorized gathers instead
    of an O(L) Python loop — following the identical predecessor links;
    short walks keep the scalar loop, which wins below the setup cost.
    """
    length = len(tails_idx)
    out = np.empty(length, dtype=np.intp)
    if length == 0:
        return out
    if length >= _DOUBLING_MIN_LENGTH and isinstance(prev, np.ndarray):
        return _lis_indices_doubling(tails_idx, prev, length)
    prev_list = prev.tolist() if isinstance(prev, np.ndarray) else prev
    k = tails_idx[-1]
    for j in range(length - 1, -1, -1):
        out[j] = k
        k = prev_list[k]
    return out


def longest_increasing_subsequence(seq: np.ndarray) -> np.ndarray:
    """Indices of one longest strictly-increasing subsequence of ``seq``.

    Patience sorting with predecessor chaining: ``O(n log n)`` time,
    ``O(n)`` space.  Returns indices in increasing order.  For equal-length
    candidates the algorithm returns the LIS whose members' values are
    piecewise smallest (the classic tails-array construction).
    """
    seq = np.asarray(seq)
    n = seq.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    tails_vals: list = []  # smallest tail value of an inc. run of each length
    tails_idx: list[int] = []  # index of that tail element in seq
    prev = np.full(n, -1, dtype=np.intp)  # predecessor links
    patience_fill(seq.tolist(), tails_vals, tails_idx, prev)
    return lis_indices_from_state(tails_idx, prev)


def lis_membership(seq: np.ndarray) -> np.ndarray:
    """Boolean mask over ``seq`` marking one canonical LIS's members."""
    mask = np.zeros(np.asarray(seq).shape[0], dtype=bool)
    mask[longest_increasing_subsequence(seq)] = True
    return mask


def naive_lcs_length(a: np.ndarray, b: np.ndarray) -> int:
    """Textbook ``O(n*m)`` dynamic-programming LCS length.

    Reference implementation used to cross-validate the LIS shortcut in
    tests and benchmarks; unusable at paper scale by design.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    # Row-rolling DP, vectorized over b with a scan per element of a.
    m = b.shape[0]
    curr = np.zeros(m + 1, dtype=np.int64)
    for x in a.tolist():
        prev_row = curr.copy()
        match = prev_row[:-1] + (b == x)
        # curr[j+1] = max(prev[j] + match, prev[j+1], curr[j]); the last term
        # is a running max that needs a cumulative pass.
        curr[1:] = np.maximum(match, prev_row[1:])
        curr = np.maximum.accumulate(curr)
    return int(curr[-1])


@dataclass(frozen=True)
class EditScript:
    """The minimum edit script transforming trial B into trial A.

    Attributes
    ----------
    matching:
        The underlying packet alignment.
    lcs_mask_b_order:
        Boolean mask over common packets **in B order**: True for packets
        kept in place (LCS members), False for moved packets.
    signed_distances:
        Signed move distances (``rank_A − rank_B``) for *all* common
        packets in B order; LCS members have 0 by definition of the script.
    deletions_b:
        Positions in B of packets absent from A (pure deletions; their
        ``d_i`` is 0 per the paper).
    insertions_a:
        Positions in A of packets absent from B (pure insertions).
    """

    matching: Matching
    lcs_mask_b_order: np.ndarray
    signed_distances: np.ndarray
    deletions_b: np.ndarray
    insertions_a: np.ndarray

    @property
    def lcs_length(self) -> int:
        """Length of the longest common subsequence."""
        return int(np.count_nonzero(self.lcs_mask_b_order))

    @property
    def n_moved(self) -> int:
        """Number of common packets the script moves."""
        return self.matching.n_common - self.lcs_length

    @property
    def moved_distances(self) -> np.ndarray:
        """Signed distances of moved packets only (Table 1 population)."""
        return self.signed_distances[~self.lcs_mask_b_order]

    def total_distance(self) -> float:
        """``Σ d_i`` — the numerator of Equation 2."""
        return float(np.abs(self.signed_distances).sum())


def edit_script(a: Trial, b: Trial, matching: Matching | None = None) -> EditScript:
    """Derive the minimum edit script turning trial B into trial A."""
    m = matching if matching is not None else match_trials(a, b)
    return edit_script_from_matching(m)


def b_order_ranks(m: Matching) -> np.ndarray:
    """A-side ranks of the common packets listed in B order.

    The permutation whose LIS is the LCS (Schensted); the input the
    patience sort runs on, both serially here and sharded in
    :mod:`repro.parallel.ordershard`.  Routed through the matching's
    cached argsort, so a pair that also sorts by B position elsewhere
    (``b_order``, the parallel engine) pays for one argsort total.
    """
    return m.a_ranks_in_b_order()


def edit_script_from_keep(
    m: Matching, a_ranks_in_b: np.ndarray, keep: np.ndarray
) -> EditScript:
    """Assemble the edit script from the canonical LIS mask.

    Pure vectorized assembly — every arithmetic op downstream of the mask
    lives here, so any path that reproduces ``keep`` exactly (the serial
    patience sort or the sharded prefix-patience merge) gets bit-identical
    ``signed_distances``, ``moved_distances`` and ``O``.
    """
    n = m.n_common
    b_ranks = np.arange(n, dtype=np.int64)
    signed = np.where(keep, 0, a_ranks_in_b - b_ranks).astype(np.float64)

    all_b = np.ones(m.len_b, dtype=bool)
    all_b[m.idx_b] = False
    deletions_b = np.flatnonzero(all_b)
    all_a = np.ones(m.len_a, dtype=bool)
    all_a[m.idx_a] = False
    insertions_a = np.flatnonzero(all_a)

    return EditScript(
        matching=m,
        lcs_mask_b_order=keep,
        signed_distances=signed,
        deletions_b=deletions_b,
        insertions_a=insertions_a,
    )


def edit_script_from_matching(m: Matching) -> EditScript:
    """The minimum edit script from a precomputed matching alone.

    The script is a pure function of the matching (positions and trial
    lengths); trials are not needed.  This is the entry point used by the
    parallel engine, whose ordering worker receives only the matching index
    arrays over shared memory.
    """
    a_ranks_in_b = b_order_ranks(m)
    return edit_script_from_keep(m, a_ranks_in_b, lis_membership(a_ranks_in_b))


@dataclass(frozen=True)
class MoveDistanceStats:
    """Distributional statistics of signed move distances (Table 1 columns)."""

    n_moved: int
    mean: float
    std: float
    abs_mean: float
    abs_std: float
    min: float
    max: float

    @classmethod
    def from_distances(cls, distances: np.ndarray) -> "MoveDistanceStats":
        """Summarize a (possibly empty) array of signed move distances."""
        d = np.asarray(distances, dtype=np.float64)
        if d.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ad = np.abs(d)
        return cls(
            n_moved=int(d.size),
            mean=float(d.mean()),
            std=float(d.std()),
            abs_mean=float(ad.mean()),
            abs_std=float(ad.std()),
            min=float(d.min()),
            max=float(d.max()),
        )


def move_distance_stats(a: Trial, b: Trial) -> MoveDistanceStats:
    """Table 1: statistics of the distances packets moved in the edit script."""
    return MoveDistanceStats.from_distances(edit_script(a, b).moved_distances)


def ordering_from_matching(m: Matching, script: EditScript) -> float:
    """Equation 2 from a precomputed matching and edit script."""
    n = m.n_common
    if n <= 1:
        return 0.0
    denom = n * (n + 1) / 2.0  # sum_{k=0}^{n} k at the reversal worst case
    return script.total_distance() / denom


def ordering_variation(a: Trial, b: Trial) -> float:
    """Equation 2: normalized variation in packet ordering between trials."""
    m = match_trials(a, b)
    return ordering_from_matching(m, edit_script(a, b, matching=m))
