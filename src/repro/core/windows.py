"""Time-windowed consistency: localize *when* an environment misbehaved.

The Section-3 metrics summarize a whole trial pair into scalars; for
debugging (the paper's Section-1 motivation) one usually needs to know
*where in time* the inconsistency sits — a contention window on a shared
port, one scheduler stall, a clock step.  This module slices a trial pair
into fixed windows on the baseline's timeline and computes per-window
deviation statistics, producing a time series that spikes exactly where
the trouble happened.

Windowed values are *diagnostic* statistics, deliberately not the
normalized Section-3 metrics: normalizers are global properties of a
trial (total duration, worst-case span), so per-window "κ" would not
compose back into the whole-trial score.  What does compose is the raw
deviation mass: the window sums of ``|Δl|`` and ``|Δg|`` add up exactly
to the numerators of Equations 3 and 4 (a property the tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .iat import iat_deltas_ns
from .latency import latency_deltas_ns
from .matching import match_trials
from .trial import Trial

__all__ = ["WindowedDeviation", "windowed_deviation", "deviation_from_deltas"]


@dataclass(frozen=True)
class WindowedDeviation:
    """Per-window deviation series for one (baseline, run) pair.

    All arrays share one length (the number of windows).  Windows are
    laid on the *baseline's* relative timeline: window ``k`` covers
    ``[k·window_ns, (k+1)·window_ns)`` after the baseline's first packet.
    """

    window_ns: float
    starts_ns: np.ndarray
    n_common: np.ndarray
    n_missing: np.ndarray
    sum_abs_latency_ns: np.ndarray
    sum_abs_iat_ns: np.ndarray
    max_abs_latency_ns: np.ndarray
    max_abs_iat_ns: np.ndarray

    @property
    def n_windows(self) -> int:
        return int(self.starts_ns.shape[0])

    def mean_abs_iat_ns(self) -> np.ndarray:
        """Per-window mean |Δg| (0 where a window is empty)."""
        with np.errstate(invalid="ignore"):
            out = self.sum_abs_iat_ns / np.maximum(self.n_common, 1)
        return np.where(self.n_common > 0, out, 0.0)

    def hottest_windows(self, k: int = 3, by: str = "iat") -> list[dict]:
        """The ``k`` most deviant windows — the debugger's starting points."""
        key = {
            "iat": self.sum_abs_iat_ns,
            "latency": self.sum_abs_latency_ns,
            "missing": self.n_missing.astype(np.float64),
        }.get(by)
        if key is None:
            raise KeyError(f"unknown ranking {by!r}; use iat/latency/missing")
        order = np.argsort(key)[::-1][:k]
        return [
            {
                "window": int(i),
                "start_ms": float(self.starts_ns[i]) / 1e6,
                "sum_abs_iat_ns": float(self.sum_abs_iat_ns[i]),
                "sum_abs_latency_ns": float(self.sum_abs_latency_ns[i]),
                "n_missing": int(self.n_missing[i]),
            }
            for i in order
        ]

    def rows(self) -> list[dict]:
        """One dict per window, for table rendering."""
        return [
            {
                "window": k,
                "start_ms": float(self.starts_ns[k]) / 1e6,
                "n_common": int(self.n_common[k]),
                "n_missing": int(self.n_missing[k]),
                "mean_abs_iat_ns": float(self.mean_abs_iat_ns()[k]),
                "max_abs_iat_ns": float(self.max_abs_iat_ns[k]),
                "max_abs_latency_ns": float(self.max_abs_latency_ns[k]),
            }
            for k in range(self.n_windows)
        ]


def deviation_from_deltas(
    rel_baseline_ns: np.ndarray,
    idx_a: np.ndarray,
    abs_latency_ns: np.ndarray,
    abs_iat_ns: np.ndarray,
    window_ns: float,
) -> WindowedDeviation:
    """Assemble the window series from per-common-packet deviations.

    The single aggregation every path runs: the batch driver
    (:func:`windowed_deviation`) and the streaming comparator
    (:meth:`repro.analysis.streamkappa.StreamKappa.windowed`) both call
    this exact function on identically-ordered inputs, so their window
    series are bit-identical.  ``rel_baseline_ns`` is the *full*
    baseline's relative timeline; ``idx_a`` the baseline positions of the
    common packets in A order; the two delta arrays are ``|Δl|`` / ``|Δg|``
    per common packet, aligned with ``idx_a``.
    """
    if window_ns <= 0:
        raise ValueError("window_ns must be positive")
    rel = np.asarray(rel_baseline_ns, dtype=np.float64)
    if rel.shape[0] == 0:
        raise ValueError("baseline trial is empty")
    n_windows = int(np.floor(rel[-1] / window_ns)) + 1
    starts = np.arange(n_windows, dtype=np.float64) * window_ns

    # Window index of every baseline packet; common packets inherit it.
    win_all = np.minimum((rel / window_ns).astype(np.intp), n_windows - 1)
    win_common = win_all[idx_a]

    n_common = np.bincount(win_common, minlength=n_windows)
    sum_l = np.bincount(win_common, weights=abs_latency_ns, minlength=n_windows)
    sum_g = np.bincount(win_common, weights=abs_iat_ns, minlength=n_windows)

    # Per-window maxima: sort by window, then segmented maximum.
    max_l = np.zeros(n_windows)
    max_g = np.zeros(n_windows)
    if win_common.size:
        np.maximum.at(max_l, win_common, abs_latency_ns)
        np.maximum.at(max_g, win_common, abs_iat_ns)

    # Missing baseline packets per window.
    present = np.zeros(rel.shape[0], dtype=bool)
    present[idx_a] = True
    n_missing = np.bincount(win_all[~present], minlength=n_windows)

    return WindowedDeviation(
        window_ns=float(window_ns),
        starts_ns=starts,
        n_common=n_common.astype(np.int64),
        n_missing=n_missing.astype(np.int64),
        sum_abs_latency_ns=sum_l,
        sum_abs_iat_ns=sum_g,
        max_abs_latency_ns=max_l,
        max_abs_iat_ns=max_g,
    )


def windowed_deviation(
    baseline: Trial, run: Trial, window_ns: float
) -> WindowedDeviation:
    """Slice the pair into baseline-timeline windows and aggregate deviations.

    Missing packets (in the baseline, absent from the run) are attributed
    to the window of their *baseline* arrival — where the operator would
    go looking for them.

    Runs through the fused timing kernel (:mod:`repro.core.fusedpass`),
    which feeds :func:`deviation_from_deltas` the identical delta arrays
    the per-component path here used to gather twice.
    """
    if window_ns <= 0:
        raise ValueError("window_ns must be positive")
    if baseline.is_empty:
        raise ValueError("baseline trial is empty")

    from .fusedpass import fused_timings  # local: fusedpass imports this module

    m = match_trials(baseline, run)
    fused = fused_timings(baseline, run, m, window_ns=window_ns)
    if fused.windows is not None:
        return fused.windows
    # No common packets: the fused kernel short-circuits before windowing;
    # aggregate empty delta arrays over the baseline timeline directly.
    return deviation_from_deltas(
        baseline.relative_times_ns(),
        m.idx_a,
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.float64),
        window_ns,
    )
