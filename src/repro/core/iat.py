"""The inter-arrival-time variation metric ``I`` (Equation 4).

For a common packet ``p_i`` at positions ``j`` in A and ``k`` in B, its
inter-arrival gaps are taken against the *preceding packet of the full
trial* (common or not): ``g_Ai = t_Aj − t_A(j−1)`` and
``g_Bi = t_Bk − t_B(k−1)``, with the base case ``t_X0 = t_X(−1)`` so the
first packet's gap is 0.  The numerator is GapReplay's "IAT deviation";
the paper adds the normalizer derived from the Figure 3 construction —
the total IAT budget of a trial is its duration, so

.. math::

    I_{AB} = \\frac{\\sum_i \\mathrm{abs}(g_{Ai} - g_{Bi})}
                  {(t_{B|B|} - t_{B0}) + (t_{A|A|} - t_{A0})}

Unlike ``L``, the normalizer uses only per-trial durations, so ``I`` is
meaningful even when the two trials' clocks share no epoch.
"""

from __future__ import annotations

import numpy as np

from .matching import Matching, match_trials
from .trial import Trial

__all__ = [
    "iat_deltas_ns",
    "iat_denominator_ns",
    "iat_from_deltas",
    "iat_from_matching",
    "iat_variation",
    "max_iat_construction",
]


def iat_deltas_ns(a: Trial, b: Trial, matching: Matching | None = None) -> np.ndarray:
    """Signed per-packet IAT deltas ``g_B − g_A`` for common packets.

    These are the series plotted in the paper's IAT-delta histograms
    (Figures 4a, 5, 6a, 7a, 8a, 9a, 9b, 10a).  Order follows A's arrival
    order.
    """
    m = matching if matching is not None else match_trials(a, b)
    if m.n_common == 0:
        return np.empty(0, dtype=np.float64)
    g_a = a.iats_ns()[m.idx_a]
    g_b = b.iats_ns()[m.idx_b]
    return g_b - g_a


def iat_denominator_ns(a: Trial, b: Trial) -> float:
    """The Equation 4 normalizer: the two trial durations summed.

    Both trials must be non-empty.
    """
    return (b.end_ns - b.start_ns) + (a.end_ns - a.start_ns)


def iat_from_deltas(deltas: np.ndarray, n_common: int, denom_ns: float) -> float:
    """Equation 4 from precomputed signed IAT deltas and the normalizer.

    The single reduction both the batch and the parallel path run; the
    parallel engine assembles the full delta array from its shards and
    calls this exact function, so the two paths are bit-identical.
    """
    if n_common == 0:
        return 0.0
    if denom_ns <= 0.0:
        # Both trials are instantaneous; all gaps are zero on both sides.
        return 0.0
    return float(np.abs(deltas).sum() / denom_ns)


def iat_from_matching(a: Trial, b: Trial, m: Matching) -> float:
    """Equation 4 from a precomputed matching."""
    if m.n_common == 0:
        return 0.0
    deltas = iat_deltas_ns(a, b, matching=m)
    return iat_from_deltas(deltas, m.n_common, iat_denominator_ns(a, b))


def iat_variation(a: Trial, b: Trial) -> float:
    """Equation 4: normalized variation in inter-arrival times between trials."""
    return iat_from_matching(a, b, match_trials(a, b))


def max_iat_construction(n: int, span_ns: float = 1e6) -> tuple[Trial, Trial]:
    """Build the Figure 3 worst case, where ``I`` attains exactly 1.

    Trial A: the first common packet at ``t=0``, all others at
    ``t=span_ns``.  Trial B: all but the last common packet at ``t=0``, the
    last at ``t=span_ns``.  The second packet then contributes an IAT
    difference of ``span_ns`` (A side) and the last contributes ``span_ns``
    (B side); all other differences are zero, and the normalizer — the two
    trial durations summed — is ``2·span_ns``, matching the numerator
    ``span_ns + span_ns``, so ``I = 1``.

    Requires ``n > 2`` (the paper notes two packets is the trivial case of
    a single IAT).
    """
    if n <= 2:
        raise ValueError("the Figure 3 construction needs more than 2 packets")
    if span_ns <= 0:
        raise ValueError("span_ns must be positive")
    tags = np.arange(n, dtype=np.int64)
    t_a = np.full(n, span_ns)
    t_a[0] = 0.0
    t_b = np.zeros(n)
    t_b[-1] = span_ns
    return (
        Trial(tags, t_a, label="maxI-A"),
        Trial(tags, t_b, label="maxI-B"),
    )
