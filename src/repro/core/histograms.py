"""Delta histograms backing the paper's figures.

Figures 4-10 plot "the percentage of packets with a given IAT [latency]
delta" against a symmetric axis spanning several orders of magnitude in
nanoseconds.  :class:`DeltaHistogram` reproduces those series with a
symmetric-log binning: a linear bin around zero (|Δ| ≤ ``linthresh``) and
logarithmically spaced bins outward on both signs.  Bin edges are fixed by
the configuration — not by the data — so histograms from different runs
and environments are directly comparable, as in the paper's side-by-side
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SymlogBins", "DeltaHistogram", "pct_within", "pct_within_from_counts"]


def pct_within_from_counts(n_within: int, n_total: int) -> float:
    """The ``pct_within`` statistic from precomputed counts.

    Counting is elementwise, so per-shard counts summed across any
    partition equal the whole-array count; routing both the batch and the
    parallel path through this one division keeps them bit-identical.
    """
    if n_total == 0:
        return 0.0
    return float(n_within) / n_total * 100.0


def pct_within(deltas_ns: np.ndarray, bound_ns: float = 10.0) -> float:
    """Percentage of deltas with ``|Δ| ≤ bound_ns``.

    This is the headline "% of packets within 10 ns IAT of the baseline
    run" statistic quoted throughout Sections 6 and 7.
    """
    deltas_ns = np.asarray(deltas_ns, dtype=np.float64)
    n_within = int(np.count_nonzero(np.abs(deltas_ns) <= bound_ns))
    return pct_within_from_counts(n_within, deltas_ns.size)


@dataclass(frozen=True)
class SymlogBins:
    """Symmetric-log bin edges shared across comparable histograms.

    Edges run ``-10^max_decade ... -linthresh, +linthresh ... +10^max_decade``
    with ``bins_per_decade`` log-spaced bins per decade per sign, plus one
    central linear bin for ``|Δ| ≤ linthresh``, plus two open-ended overflow
    bins capturing anything beyond ``±10^max_decade``.
    """

    linthresh: float = 10.0
    max_decade: int = 9
    bins_per_decade: int = 4

    def __post_init__(self) -> None:
        if self.linthresh <= 0:
            raise ValueError("linthresh must be positive")
        if 10.0**self.max_decade <= self.linthresh:
            raise ValueError("max_decade must exceed log10(linthresh)")
        if self.bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")

    def edges(self) -> np.ndarray:
        """Monotone bin edges including ±inf overflow edges."""
        lo = np.log10(self.linthresh)
        n = int(np.ceil((self.max_decade - lo) * self.bins_per_decade))
        pos = np.logspace(lo, self.max_decade, n + 1)
        return np.concatenate([[-np.inf], -pos[::-1], pos, [np.inf]])

    def centers(self) -> np.ndarray:
        """Representative bin centers (geometric means; 0 for the linear bin).

        Overflow bins take the finite edge as their representative value.
        """
        e = self.edges()
        finite = e[1:-1]
        mids = np.sign(finite[:-1]) * np.sqrt(np.abs(finite[:-1] * finite[1:]))
        # The central bin spans [-linthresh, +linthresh]: its center is 0.
        zero_bin = np.flatnonzero((finite[:-1] < 0) & (finite[1:] > 0))
        mids[zero_bin] = 0.0
        return np.concatenate([[finite[0]], mids, [finite[-1]]])


@dataclass(frozen=True)
class DeltaHistogram:
    """A per-run delta histogram in percent-of-packets, as in the figures."""

    bins: SymlogBins
    counts: np.ndarray
    n_total: int
    label: str = ""
    meta: dict = field(default_factory=dict, compare=False)

    @classmethod
    def from_deltas(
        cls,
        deltas_ns: np.ndarray,
        bins: SymlogBins | None = None,
        label: str = "",
        meta: dict | None = None,
    ) -> "DeltaHistogram":
        """Histogram an array of signed deltas (ns) into the shared bins."""
        bins = bins if bins is not None else SymlogBins()
        deltas_ns = np.asarray(deltas_ns, dtype=np.float64)
        counts, _ = np.histogram(deltas_ns, bins=bins.edges())
        return cls(
            bins=bins,
            counts=counts.astype(np.int64),
            n_total=int(deltas_ns.size),
            label=label,
            meta=dict(meta or {}),
        )

    @classmethod
    def from_counts(
        cls,
        counts: np.ndarray,
        n_total: int,
        bins: SymlogBins | None = None,
        label: str = "",
        meta: dict | None = None,
    ) -> "DeltaHistogram":
        """Histogram from precomputed per-bin counts (the merge entry point).

        Binning is elementwise, so integer counts from any shard partition
        of a delta array sum to exactly the counts :meth:`from_deltas`
        computes on the whole array; the parallel engine's reducer builds
        its histograms through this constructor.
        """
        bins = bins if bins is not None else SymlogBins()
        counts = np.asarray(counts)
        if counts.shape != (bins.edges().size - 1,):
            raise ValueError("counts do not match the bin layout")
        return cls(
            bins=bins,
            counts=counts.astype(np.int64),
            n_total=int(n_total),
            label=label,
            meta=dict(meta or {}),
        )

    @property
    def percent(self) -> np.ndarray:
        """Counts as percentages of all packets (the figures' y-axis)."""
        if self.n_total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / self.n_total * 100.0

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """The figure series: (bin centers in ns, percent of packets)."""
        return self.bins.centers(), self.percent

    def nonzero_rows(self) -> list[tuple[float, float]]:
        """(center, percent) pairs for non-empty bins — compact printing."""
        centers, pct = self.series()
        idx = np.flatnonzero(self.counts)
        return [(float(centers[i]), float(pct[i])) for i in idx]
