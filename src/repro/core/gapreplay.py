"""GapReplay's raw (unnormalized) deviation metrics.

Section 8.2 credits GapReplay (Yu et al., ICC '23) with the numerators of
Equations 3 and 4 — "cumulative latency" and "IAT deviation" — and frames
the paper's contribution as the proven normalizers.  The raw forms are
still useful (they carry physical units, nanoseconds, where the
normalized forms are ratios), so they are exposed here both for lineage
fidelity and for users who want absolute budgets.

Both functions share the matching/packet conventions of the normalized
metrics and satisfy, by construction:

* ``latency_variation(a, b) == cumulative_latency_ns(a, b) / (n · span)``
* ``iat_variation(a, b) == iat_deviation_ns(a, b) / (dur_A + dur_B)``

which the test suite pins.
"""

from __future__ import annotations

import numpy as np

from .iat import iat_deltas_ns
from .latency import latency_deltas_ns
from .matching import Matching, match_trials
from .trial import Trial

__all__ = [
    "cumulative_latency_ns",
    "iat_deviation_ns",
    "mean_absolute_latency_delta_ns",
    "mean_absolute_iat_delta_ns",
]


def cumulative_latency_ns(a: Trial, b: Trial, matching: Matching | None = None) -> float:
    """GapReplay's cumulative latency: ``Σ |l_Ai − l_Bi|`` in nanoseconds."""
    deltas = latency_deltas_ns(a, b, matching=matching)
    return float(np.abs(deltas).sum())


def iat_deviation_ns(a: Trial, b: Trial, matching: Matching | None = None) -> float:
    """GapReplay's IAT deviation: ``Σ |g_Ai − g_Bi|`` in nanoseconds."""
    deltas = iat_deltas_ns(a, b, matching=matching)
    return float(np.abs(deltas).sum())


def mean_absolute_latency_delta_ns(a: Trial, b: Trial) -> float:
    """Per-packet mean |Δl| — the physically interpretable latency figure."""
    m = match_trials(a, b)
    if m.n_common == 0:
        return 0.0
    return cumulative_latency_ns(a, b, matching=m) / m.n_common


def mean_absolute_iat_delta_ns(a: Trial, b: Trial) -> float:
    """Per-packet mean |Δg| — the physically interpretable IAT figure."""
    m = match_trials(a, b)
    if m.n_common == 0:
        return 0.0
    return iat_deviation_ns(a, b, matching=m) / m.n_common
