"""Streaming (chunked) computation of the timing metrics.

Paper-scale captures fit in memory comfortably, but the artifact notes
analysis time "scales with the length of the packet captures"; captures
from long rolling recordings (hours of 100 Gbps traffic) would not fit.
This module computes the **L and I numerators and denominators in
constant memory** by scanning two aligned capture streams chunk by chunk.

What streams and what doesn't, *in this module's two-unknown-streams
regime* (neither capture is held in memory):

* ``U``: streamable here under the *aligned-captures* precondition below
  (counting common packets).
* ``L``, ``I``: fully streamable — they depend only on per-packet values
  and trial endpoints, both of which accumulate.
* ``O``: not streamable *here* — the LCS is a global property of the
  whole permutation (any chunking bound can be violated by a single
  far-moved packet).  :class:`StreamingComparison` does not *compute* O;
  instead its alignment check **guarantees** O = 0 (aligned captures are
  the identity permutation), so it reports the exact float ``0.0``.

With a **known baseline**, however, O *does* stream: when trial A is
fully in memory (the paper's protocol — one recorded baseline, many
repeats compared against it) each arriving B packet's matching key and
A-position are final on arrival, and the prefix-patience merge of
:mod:`repro.parallel.ordershard` keeps the exact serial patience-LIS
state live at every chunk boundary.
:class:`repro.analysis.streamkappa.StreamKappa` implements that path —
all four components, bit-identical to the batch metrics on misordered and
droppy streams alike (``docs/streaming.md`` has the argument).  This
module's aligned-only fast path remains the right tool when *neither*
capture fits in memory and you only need timing consistency.

This follows the :class:`~repro.core.kappa.MetricVector` contract shared
by every comparison path (batch, streaming, parallel): components are
always concrete finite floats in [0, 1] — never ``None`` — and a path that
cannot compute a component must either guarantee its value by a checked
precondition (as here) or raise.  Consumers can therefore always combine,
average and render vectors from any path interchangeably.
``tests/test_metric_contract.py`` pins this for all three paths.

Precondition: the two captures must be *packet-aligned* — same packets in
the same order (the quiet-environment regime where U = O = 0, which is
where huge captures arise: nothing interesting happened, you just want
the timing consistency).  Misalignment is detected chunk-by-chunk via tag
comparison and raises rather than producing silently wrong numbers;
misordered/droppy captures need the batch path.
"""

from __future__ import annotations

import numpy as np

from ..core.kappa import MetricVector
from ..core.trial import Trial

__all__ = ["StreamingComparison", "stream_compare"]


class StreamingComparison:
    """Accumulates L and I over aligned capture chunks.

    Feed matching chunks of runs A and B via :meth:`update`; call
    :meth:`result` at end of stream.  Memory use is O(chunk), not O(capture).
    """

    def __init__(self) -> None:
        self._n = 0
        self._sum_abs_dl = 0.0
        self._sum_abs_dg = 0.0
        self._first_a: float | None = None
        self._first_b: float | None = None
        self._last_a = 0.0
        self._last_b = 0.0
        self._finalized = False

    def update(self, tags_a, times_a, tags_b, times_b) -> None:
        """Consume one aligned chunk from each capture."""
        tags_a = np.asarray(tags_a, dtype=np.int64)
        tags_b = np.asarray(tags_b, dtype=np.int64)
        a = np.asarray(times_a, dtype=np.float64)
        b = np.asarray(times_b, dtype=np.float64)
        if tags_a.shape != tags_b.shape or a.shape != b.shape or a.shape != tags_a.shape:
            raise ValueError("chunks must be equal-length and aligned")
        if not np.array_equal(tags_a, tags_b):
            raise ValueError(
                "captures are not packet-aligned; streaming comparison "
                "requires the U = O = 0 regime — use compare_trials instead"
            )
        if a.size == 0:
            return
        if self._first_a is None:
            self._first_a = float(a[0])
            self._first_b = float(b[0])
            prev_a, prev_b = float(a[0]), float(b[0])
        else:
            prev_a, prev_b = self._last_a, self._last_b

        # Latency deltas need only the first-packet anchors.
        dl = (b - self._first_b) - (a - self._first_a)
        self._sum_abs_dl += float(np.abs(dl).sum())

        # IAT deltas need one packet of carry across the chunk boundary.
        g_a = np.diff(a, prepend=prev_a)
        g_b = np.diff(b, prepend=prev_b)
        if self._n == 0:
            g_a[0] = 0.0  # the paper's base case: first packet has g = 0
            g_b[0] = 0.0
        self._sum_abs_dg += float(np.abs(g_b - g_a).sum())

        self._last_a = float(a[-1])
        self._last_b = float(b[-1])
        self._n += int(a.size)

    def result(self) -> MetricVector:
        """The metric vector under the shared all-floats contract.

        U and O are the exact float ``0.0``: the chunk-by-chunk alignment
        check made them true by construction, not unknown.  The κ of the
        returned vector is therefore the plain Equation 5, numerically
        equal to the "O-less" κ an aligned-capture regime implies.
        """
        if self._n == 0:
            return MetricVector(0.0, 0.0, 0.0, 0.0)
        span = max(
            self._last_b - self._first_a,
            self._last_a - self._first_b,
            self._last_a - self._first_a,
            self._last_b - self._first_b,
        )
        l_val = self._sum_abs_dl / (self._n * span) if span > 0 else 0.0
        denom = (self._last_a - self._first_a) + (self._last_b - self._first_b)
        i_val = self._sum_abs_dg / denom if denom > 0 else 0.0
        return MetricVector(0.0, 0.0, l_val, i_val)

    @property
    def n_packets(self) -> int:
        """Packets consumed so far."""
        return self._n


def stream_compare(a: Trial, b: Trial, chunk: int = 65536) -> MetricVector:
    """Streaming comparison of two in-memory trials (testing/validation).

    Produces bit-identical L and I to the batch path on aligned captures;
    mainly exists so the equivalence is testable, and as the reference
    for wiring :class:`StreamingComparison` to real chunked readers.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    if len(a) != len(b):
        raise ValueError("streaming comparison requires aligned captures")
    sc = StreamingComparison()
    for lo in range(0, len(a), chunk):
        hi = lo + chunk
        sc.update(a.tags[lo:hi], a.times_ns[lo:hi], b.tags[lo:hi], b.times_ns[lo:hi])
    return sc.result()
