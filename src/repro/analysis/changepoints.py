"""Step detection in latency-delta series (clock-step diagnosis).

Section 7's FABRIC latency histograms show "either one spike far to one
side or two spikes symmetrically across 0" — the signature of mid-capture
clock steps (``ptp_kvm`` corrections): every packet after the step
carries a shifted latency delta.  Given the per-packet Δl series of a run
pair, this module estimates *how many* steps occurred, *when*, and *how
big* they were — turning the histogram's anonymous spikes back into
events an operator can correlate with sync logs.

Method: recursive binary segmentation on the mean.  For a segment, the
best split maximizes the standardized mean difference between the two
halves (a CUSUM-style statistic); splits are accepted while the implied
step size clears ``min_step_ns`` and the statistic clears a noise-scaled
threshold.  Binary segmentation is O(n log n), robust for the few-steps
regime that clock faults produce, and has no tuning beyond the two
physical thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyStep", "detect_latency_steps", "detect_series_steps"]


@dataclass(frozen=True)
class LatencyStep:
    """One detected step in a latency-delta series."""

    index: int
    step_ns: float
    mean_before_ns: float
    mean_after_ns: float


def _best_split(x: np.ndarray) -> tuple[int, float]:
    """(split index, |standardized mean gap|) of the best cut of ``x``.

    The statistic is the two-sample z-like score
    ``|mean_right − mean_left| / (s · sqrt(1/n_l + 1/n_r))`` evaluated at
    every cut in one vectorized pass via prefix sums.
    """
    n = x.shape[0]
    if n < 4:
        return 0, 0.0
    csum = np.cumsum(x)
    total = csum[-1]
    k = np.arange(1, n)  # left sizes
    mean_l = csum[:-1] / k
    mean_r = (total - csum[:-1]) / (n - k)
    # Pooled scale from a robust global estimate (MAD of the diffs keeps
    # the step itself from inflating the noise estimate).
    diffs = np.diff(x)
    scale = 1.4826 * np.median(np.abs(diffs - np.median(diffs))) / np.sqrt(2.0)
    scale = max(scale, 1e-9)
    z = np.abs(mean_r - mean_l) / (scale * np.sqrt(1.0 / k + 1.0 / (n - k)))
    # Guard the edges: a cut needs a few points on each side.
    z[:2] = 0.0
    z[-2:] = 0.0
    best = int(np.argmax(z))
    return best + 1, float(z[best])


def detect_latency_steps(
    latency_deltas_ns: np.ndarray,
    *,
    min_step_ns: float = 1_000.0,
    z_threshold: float = 8.0,
    max_steps: int = 16,
) -> list[LatencyStep]:
    """Detect mean shifts in a latency-delta series.

    Parameters
    ----------
    latency_deltas_ns:
        Per-packet signed Δl (e.g. from
        :func:`repro.core.latency_deltas_ns`), in packet order.
    min_step_ns:
        Smallest physically interesting step; shifts below it are noise.
    z_threshold:
        Required standardized score for a split (8 is conservative at
        capture-scale n).
    max_steps:
        Recursion budget (clock faults produce few steps; a series asking
        for more is not step-shaped).
    """
    x = np.asarray(latency_deltas_ns, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("latency_deltas_ns must be one-dimensional")
    if min_step_ns <= 0 or z_threshold <= 0 or max_steps < 1:
        raise ValueError("thresholds must be positive")

    boundaries: list[int] = []
    segments = [(0, x.shape[0])]
    while segments and len(boundaries) < max_steps:
        lo, hi = segments.pop()
        split, z = _best_split(x[lo:hi])
        if z < z_threshold:
            continue
        g = lo + split
        step = float(x[g:hi].mean() - x[lo:g].mean())
        if abs(step) < min_step_ns:
            continue
        boundaries.append(g)
        segments.append((lo, g))
        segments.append((g, hi))

    # Step sizes from the *final* segmentation: detection-time segments can
    # span other steps, contaminating the means.
    cuts = [0] + sorted(boundaries) + [x.shape[0]]
    seg_means = [float(x[a:b].mean()) for a, b in zip(cuts[:-1], cuts[1:])]
    steps = []
    for k, g in enumerate(sorted(boundaries)):
        before, after = seg_means[k], seg_means[k + 1]
        if abs(after - before) < min_step_ns:
            continue  # a boundary that dissolved once its neighbours split
        steps.append(
            LatencyStep(
                index=g,
                step_ns=after - before,
                mean_before_ns=before,
                mean_after_ns=after,
            )
        )
    return steps


def detect_series_steps(
    series: np.ndarray,
    *,
    min_step: float,
    z_threshold: float = 8.0,
    max_steps: int = 16,
) -> list[LatencyStep]:
    """Step detection on a series in arbitrary units (e.g. windowed κ).

    The segmentation math is unit-agnostic — only the parameter names of
    :func:`detect_latency_steps` are latency-flavored — so this wrapper
    reuses it verbatim for non-latency series.  The live monitor
    (:class:`repro.analysis.streamkappa.KappaMonitor`) runs it over each
    session's windowed κ history to flag degradations: a returned step
    with negative ``step_ns`` (read: "step size", in the series' own
    units) is a downward shift of the series mean at ``index``.
    """
    return detect_latency_steps(
        series,
        min_step_ns=min_step,
        z_threshold=z_threshold,
        max_steps=max_steps,
    )
