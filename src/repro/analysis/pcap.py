"""Classic-pcap interoperability.

The paper's pipeline stores packet captures (via ``dpdkcap``) and
analyzes them offline; downstream users will want to feed *real* captures
into the metrics or inspect simulated trials in standard tools.  This
module round-trips :class:`~repro.core.trial.Trial` objects through the
classic pcap format (nanosecond-resolution magic ``0xA1B23C4D``,
link-type Ethernet):

* **export** — each packet becomes a well-formed Ethernet/IPv4/UDP frame
  of the configured size, padded, ending in the 16-byte Choir trailer
  (:mod:`repro.analysis.tagging`); IPv4 header checksums are computed so
  the frames pass standard-tool validation;
* **import** — frames are parsed back by trailer; packets whose trailer
  fails validation are *excluded and counted* — exactly how a corrupted
  packet becomes "missing" for the U metric (Section 3).

The writer is vectorized over fixed-size frames (the evaluation's
workloads are fixed-size); the reader has a vectorized fast path for
fixed-record captures and a sequential fallback for arbitrary ones.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.trial import Trial
from .tagging import TrailerError, tag_to_trailer, trailer_to_tag

__all__ = ["write_pcap", "read_pcap", "PcapReadResult", "MIN_FRAME_BYTES"]

#: Nanosecond-resolution pcap magic.
_MAGIC_NS = 0xA1B23C4D
#: Microsecond-resolution magic (accepted on read).
_MAGIC_US = 0xA1B2C3D4
_GLOBAL = struct.Struct("<IHHiIII")
_LINKTYPE_ETHERNET = 1

_ETH_HDR = 14
_IP_HDR = 20
_UDP_HDR = 8
_TRAILER = 16
#: Smallest frame that can carry the headers plus the Choir trailer.
MIN_FRAME_BYTES = _ETH_HDR + _IP_HDR + _UDP_HDR + _TRAILER


def _ipv4_checksum(header: np.ndarray) -> int:
    """RFC 791 header checksum of a 20-byte header (checksum field zeroed)."""
    words = header.reshape(-1, 2)
    total = int((words[:, 0].astype(np.uint32) << 8).sum() + words[:, 1].sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _frame_template(frame_bytes: int) -> np.ndarray:
    """A valid Ethernet/IPv4/UDP frame skeleton of ``frame_bytes``."""
    if frame_bytes < MIN_FRAME_BYTES:
        raise ValueError(
            f"frame_bytes must be >= {MIN_FRAME_BYTES} to carry the trailer"
        )
    f = np.zeros(frame_bytes, dtype=np.uint8)
    # Ethernet: locally administered MACs, EtherType IPv4.
    f[0:6] = (0x02, 0xC4, 0x01, 0x12, 0x50, 0x01)   # dst
    f[6:12] = (0x02, 0xC4, 0x01, 0x12, 0x50, 0x02)  # src
    f[12:14] = (0x08, 0x00)
    # IPv4.
    ip_len = frame_bytes - _ETH_HDR
    ip = f[_ETH_HDR : _ETH_HDR + _IP_HDR]
    ip[0] = 0x45            # version 4, IHL 5
    ip[2] = (ip_len >> 8) & 0xFF
    ip[3] = ip_len & 0xFF
    ip[8] = 64              # TTL
    ip[9] = 17              # UDP
    ip[12:16] = (10, 0, 0, 1)
    ip[16:20] = (10, 0, 0, 2)
    csum = _ipv4_checksum(ip)
    ip[10] = (csum >> 8) & 0xFF
    ip[11] = csum & 0xFF
    # UDP.
    udp_len = ip_len - _IP_HDR
    udp = f[_ETH_HDR + _IP_HDR : _ETH_HDR + _IP_HDR + _UDP_HDR]
    udp[0:2] = (0x13, 0x37)  # src port 4919
    udp[2:4] = (0x13, 0x38)
    udp[4] = (udp_len >> 8) & 0xFF
    udp[5] = udp_len & 0xFF
    # checksum 0: legal for IPv4 UDP.
    return f


def write_pcap(
    trial: Trial,
    path: str | Path,
    *,
    frame_bytes: int = 1400,
    snaplen: int = 65535,
) -> Path:
    """Export a trial as a nanosecond-resolution pcap file.

    Every packet becomes a ``frame_bytes`` Ethernet/IPv4/UDP frame whose
    last 16 bytes are the Choir trailer for its tag.  Timestamps must be
    non-negative (pcap stores unsigned epoch offsets); shift the trial
    first if needed.
    """
    path = Path(path)
    n = len(trial)
    if n and float(trial.times_ns[0]) < 0:
        raise ValueError("pcap timestamps are unsigned; shift the trial to >= 0")

    header = _GLOBAL.pack(_MAGIC_NS, 2, 4, 0, 0, snaplen, _LINKTYPE_ETHERNET)
    template = _frame_template(frame_bytes)

    rec_len = 16 + frame_bytes
    records = np.zeros((n, rec_len), dtype=np.uint8)
    records[:, 16:] = template

    times = trial.times_ns
    ts_sec = (times // 1e9).astype(np.uint32)
    ts_nsec = (times - ts_sec.astype(np.float64) * 1e9).astype(np.uint32)
    hdr_view = records[:, :16].view(np.uint32).reshape(n, 4)
    hdr_view[:, 0] = ts_sec
    hdr_view[:, 1] = ts_nsec
    hdr_view[:, 2] = frame_bytes  # incl_len
    hdr_view[:, 3] = frame_bytes  # orig_len

    # Per-packet trailer: CRC forces a Python loop, but only over tags.
    trailer_off = rec_len - _TRAILER
    trailers = b"".join(tag_to_trailer(int(t)) for t in trial.tags)
    records[:, trailer_off:] = np.frombuffer(trailers, dtype=np.uint8).reshape(
        n, _TRAILER
    )

    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(records.tobytes())
    return path


@dataclass(frozen=True)
class PcapReadResult:
    """A parsed capture: the valid packets plus corruption accounting."""

    trial: Trial
    n_frames: int
    n_corrupted: int
    n_foreign: int  # frames too short to carry a trailer at all


def read_pcap(path: str | Path, *, label: str = "") -> PcapReadResult:
    """Parse a pcap back into a trial via the Choir trailers.

    Frames with an invalid trailer are counted as corrupted (they will
    surface as missing packets in ``U``); frames too short for a trailer
    are counted as foreign and likewise excluded.
    """
    raw = Path(path).read_bytes()
    if len(raw) < _GLOBAL.size:
        raise ValueError(f"{path}: not a pcap (too short)")
    magic, _, _, _, _, _, linktype = _GLOBAL.unpack_from(raw, 0)
    if magic == _MAGIC_NS:
        ts_scale = 1.0
    elif magic == _MAGIC_US:
        ts_scale = 1e3
    else:
        raise ValueError(f"{path}: unknown pcap magic {magic:#x}")
    if linktype != _LINKTYPE_ETHERNET:
        raise ValueError(f"{path}: unsupported linktype {linktype}")

    tags: list[int] = []
    times: list[float] = []
    n_frames = n_corrupted = n_foreign = 0
    off = _GLOBAL.size
    total = len(raw)
    while off + 16 <= total:
        ts_sec, ts_sub, incl, _orig = struct.unpack_from("<IIII", raw, off)
        off += 16
        if off + incl > total:
            raise ValueError(f"{path}: truncated record at byte {off}")
        frame = raw[off : off + incl]
        off += incl
        n_frames += 1
        if incl < _TRAILER:
            n_foreign += 1
            continue
        try:
            tag = trailer_to_tag(frame[-_TRAILER:])
        except TrailerError:
            n_corrupted += 1
            continue
        tags.append(tag)
        times.append(ts_sec * 1e9 + ts_sub * ts_scale)

    trial = Trial.from_arrival_events(
        np.asarray(tags, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
        label=label,
    )
    return PcapReadResult(
        trial=trial,
        n_frames=n_frames,
        n_corrupted=n_corrupted,
        n_foreign=n_foreign,
    )
