"""Descriptive statistics of a single capture.

Before comparing trials, an operator wants to know what one capture
*looks like*: achieved rate, gap distribution, burst structure, per-
replayer composition.  These are the numbers the paper quotes when
describing its workloads ("1,055,648 packets captured from 0.3 seconds
... 3,518,826 packets per second") and the burst phenomenology its
Section 8.2 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trial import Trial
from .tagging import split_tags

__all__ = ["TraceStats", "trace_stats", "detect_bursts"]


def detect_bursts(trial: Trial, gap_threshold_ns: float) -> np.ndarray:
    """Burst ids from arrival gaps: a new burst starts at every gap above
    the threshold.

    The inverse view of the replayer's burstification: on the wire, a
    Choir burst appears as back-to-back frames separated by larger
    inter-burst gaps, so thresholding the gaps recovers the structure.
    """
    if gap_threshold_ns <= 0:
        raise ValueError("gap_threshold_ns must be positive")
    if trial.is_empty:
        return np.empty(0, dtype=np.int64)
    gaps = trial.iats_ns()
    new_burst = gaps > gap_threshold_ns
    new_burst[0] = False
    return np.cumsum(new_burst).astype(np.int64)


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one capture."""

    n_packets: int
    duration_ns: float
    pps: float
    iat_mean_ns: float
    iat_p50_ns: float
    iat_p99_ns: float
    iat_max_ns: float
    n_replayers: int
    per_replayer_counts: dict[int, int]
    n_bursts: int
    mean_burst_size: float

    def rows(self) -> dict:
        """Flat dict for rendering."""
        return {
            "packets": self.n_packets,
            "duration_ms": self.duration_ns / 1e6,
            "Mpps": self.pps / 1e6,
            "iat_mean_ns": self.iat_mean_ns,
            "iat_p50_ns": self.iat_p50_ns,
            "iat_p99_ns": self.iat_p99_ns,
            "replayers": self.n_replayers,
            "bursts": self.n_bursts,
            "mean_burst": self.mean_burst_size,
        }


def trace_stats(trial: Trial, *, burst_gap_ns: float | None = None) -> TraceStats:
    """Compute the summary for one capture.

    ``burst_gap_ns`` sets the burst-detection threshold; by default it is
    three times the median gap (robust to the rate without tuning).
    """
    n = len(trial)
    if n == 0:
        return TraceStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, {}, 0, 0.0)
    gaps = trial.iats_ns()[1:] if n > 1 else np.empty(0)
    duration = trial.duration_ns
    pps = (n - 1) / duration * 1e9 if duration > 0 else 0.0

    rids, _ = split_tags(trial.tags)
    uniq, counts = np.unique(rids, return_counts=True)

    if burst_gap_ns is None:
        med = float(np.median(gaps)) if gaps.size else 1.0
        burst_gap_ns = max(3.0 * med, 1.0)
    bursts = detect_bursts(trial, burst_gap_ns)
    n_bursts = int(bursts[-1]) + 1 if bursts.size else 0

    return TraceStats(
        n_packets=n,
        duration_ns=duration,
        pps=pps,
        iat_mean_ns=float(gaps.mean()) if gaps.size else 0.0,
        iat_p50_ns=float(np.percentile(gaps, 50)) if gaps.size else 0.0,
        iat_p99_ns=float(np.percentile(gaps, 99)) if gaps.size else 0.0,
        iat_max_ns=float(gaps.max()) if gaps.size else 0.0,
        n_replayers=int(uniq.shape[0]),
        per_replayer_counts={int(r): int(c) for r, c in zip(uniq, counts)},
        n_bursts=n_bursts,
        mean_burst_size=n / n_bursts if n_bursts else 0.0,
    )
