"""Offline capture analysis: the artifact-notebook pipeline.

The paper's artifact records captures per run, then "analyze[s] packet
captures and produce[s] figures similar to those in the paper" with the
metrics in a text file.  This module is that pipeline over the
simulator's capture files: point it at a directory of run captures, get
back the per-run metric rows, the Table-2 aggregate row, the figure
histograms, and a rendered text report.
"""

from __future__ import annotations

from pathlib import Path

from ..core.histograms import SymlogBins
from ..core.report import RunSeriesReport, compare_series
from ..core.trial import Trial
from .capture import read_capture, write_capture
from .textplot import render_histogram, render_metric_rows

__all__ = ["save_series", "load_series", "analyze_directory", "render_report"]


def save_series(trials: list[Trial], directory: str | Path) -> list[Path]:
    """Write one capture file per run into ``directory`` (created if needed).

    Files are named ``run-<label>.cho``; ordering metadata is preserved by
    an ``index.txt`` manifest listing labels in run order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    labels = []
    for t in trials:
        label = t.label or f"run{len(labels)}"
        paths.append(write_capture(t, directory / f"run-{label}.cho"))
        labels.append(label)
    (directory / "index.txt").write_text("\n".join(labels) + "\n")
    return paths


def load_series(directory: str | Path) -> list[Trial]:
    """Load a capture series saved by :func:`save_series`, in run order."""
    directory = Path(directory)
    index = directory / "index.txt"
    if index.exists():
        labels = [line for line in index.read_text().splitlines() if line]
        paths = [directory / f"run-{label}.cho" for label in labels]
    else:
        paths = sorted(directory.glob("run-*.cho"))
    if not paths:
        raise FileNotFoundError(f"no captures found under {directory}")
    return [read_capture(p) for p in paths]


def analyze_directory(
    directory: str | Path,
    environment: str = "",
    bins: SymlogBins | None = None,
    jobs: int | None = None,
) -> RunSeriesReport:
    """Full Section-3 analysis of a saved capture series.

    The first capture in run order is the baseline (run A), as in the
    paper's protocol.  ``jobs`` fans the per-pair comparisons out across
    processes (default ``REPRO_JOBS`` or serial; the report is exactly the
    same either way — see :mod:`repro.parallel`).
    """
    trials = load_series(directory)
    environment = environment or str(directory)
    from ..parallel import compare_series_parallel, default_jobs

    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs > 1:
        return compare_series_parallel(trials, environment=environment, bins=bins, jobs=jobs)
    return compare_series(trials, environment=environment, bins=bins)


def render_report(report: RunSeriesReport, *, histograms: bool = True) -> str:
    """Human-readable text report: per-run rows, means, optional figures.

    This is the shape of the artifact's text-file output: metric values
    per run against run A, then the aggregate, then the histograms the
    figures plot.
    """
    lines = [
        f"environment: {report.environment}",
        f"baseline run: {report.baseline_label}",
        "",
        "per-run metrics (vs baseline):",
        render_metric_rows(
            report.run_rows(),
            columns=["run", "U", "O", "I", "L", "kappa", "pct_iat_10ns", "n_missing"],
        ),
        "mean (Table 2 row):",
        render_metric_rows([report.mean_row()]),
    ]
    if histograms:
        for p in report.pairs:
            lines.append(
                render_histogram(
                    p.iat_hist, title=f"IAT deltas, run {p.run_label} vs {p.baseline_label}:"
                )
            )
            lines.append(
                render_histogram(
                    p.latency_hist,
                    title=f"latency deltas, run {p.run_label} vs {p.baseline_label}:",
                )
            )
    return "\n".join(lines)
