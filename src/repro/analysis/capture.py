"""Binary capture files: the simulator's pcap-equivalent trace format.

The paper's artifact saves packet captures per run and analyzes them
offline.  The simulator's captures only need (tag, timestamp) pairs, so
the format is a deliberately simple, self-describing binary layout that
memory-maps cleanly:

* 32-byte header: magic ``b"CHO1"``, version u32, packet count u64, label
  (12 bytes, NUL-padded ASCII), 4 reserved bytes;
* payload: ``count`` int64 tags, then ``count`` float64 timestamps (two
  contiguous arrays — column layout, so each loads with one
  ``np.frombuffer`` and no per-record parsing).

Writer and reader round-trip :class:`~repro.core.trial.Trial` objects
exactly; an optional JSON sidecar carries free-form metadata.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from ..core.trial import Trial

__all__ = ["write_capture", "read_capture", "capture_info", "CaptureFormatError"]

MAGIC = b"CHO1"
VERSION = 1
_HEADER = struct.Struct("<4sIQ12s4s")
assert _HEADER.size == 32


class CaptureFormatError(ValueError):
    """Raised when a capture file is malformed or unsupported."""


def write_capture(trial: Trial, path: str | Path, *, sidecar: bool = True) -> Path:
    """Write a trial to ``path``; returns the path written.

    With ``sidecar=True`` a ``<path>.json`` carrying ``trial.meta`` and the
    label is written alongside (the capture itself stays fixed-layout).
    """
    path = Path(path)
    label = trial.label.encode("ascii", "replace")[:12]
    header = _HEADER.pack(MAGIC, VERSION, len(trial), label.ljust(12, b"\0"), b"\0" * 4)
    with open(path, "wb") as f:
        f.write(header)
        f.write(np.ascontiguousarray(trial.tags).tobytes())
        f.write(np.ascontiguousarray(trial.times_ns).tobytes())
    if sidecar:
        meta = {"label": trial.label, "meta": trial.meta}
        Path(f"{path}.json").write_text(json.dumps(meta, default=str, indent=1))
    return path


def capture_info(path: str | Path) -> dict:
    """Header fields of a capture without loading the payload."""
    path = Path(path)
    with open(path, "rb") as f:
        raw = f.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise CaptureFormatError(f"{path}: truncated header")
    magic, version, count, label, _ = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise CaptureFormatError(f"{path}: bad magic {magic!r}")
    if version != VERSION:
        raise CaptureFormatError(f"{path}: unsupported version {version}")
    return {
        "version": version,
        "count": count,
        "label": label.rstrip(b"\0").decode("ascii"),
    }


def read_capture(path: str | Path, *, mmap: bool = True) -> Trial:
    """Load a capture back into a :class:`Trial`.

    ``mmap=True`` maps the arrays read-only instead of copying — captures
    at paper scale are ~17 MB each, and analysis only streams over them.
    Metadata is restored from the JSON sidecar when present.
    """
    path = Path(path)
    info = capture_info(path)
    n = info["count"]
    offset_tags = _HEADER.size
    offset_times = offset_tags + 8 * n
    if mmap:
        tags = np.memmap(path, dtype=np.int64, mode="r", offset=offset_tags, shape=(n,))
        times = np.memmap(
            path, dtype=np.float64, mode="r", offset=offset_times, shape=(n,)
        )
        # Trial normalizes to ascontiguousarray, which copies from the map
        # only if needed; both views are already contiguous.
        tags = np.asarray(tags)
        times = np.asarray(times)
    else:
        with open(path, "rb") as f:
            f.seek(offset_tags)
            tags = np.frombuffer(f.read(8 * n), dtype=np.int64)
            times = np.frombuffer(f.read(8 * n), dtype=np.float64)
    expected = offset_times + 8 * n
    actual = path.stat().st_size
    if actual < expected:
        raise CaptureFormatError(
            f"{path}: payload truncated ({actual} bytes, need {expected})"
        )
    meta: dict = {}
    sidecar = Path(f"{path}.json")
    if sidecar.exists():
        meta = json.loads(sidecar.read_text()).get("meta", {})
    return Trial(tags, times, label=info["label"], meta=meta)
