"""PASTRAMI-style stability screening: κ intervals as the reporting default.

The paper characterizes each environment from one recorded session and a
handful of replays; Table 2 prints the 4-run *means*.  A point estimate
hides exactly what a reproduction needs to surface — how much the
characterization moves when the whole session is redone.  PASTRAMI's
answer for software-router benchmarking applies unchanged here: screen
runs for stability, report dispersion, and stop sampling only once the
interval is tight enough to defend.

This module promotes the :mod:`repro.analysis.stats` bootstrap machinery
into that default reporting path:

* :func:`seed_sweep_parallel` — the pool-parallel twin of
  :func:`repro.analysis.stats.seed_sweep`: per-seed sessions fan out over
  the persistent worker pool through the sweep coordinator
  (:func:`repro.sweep.coordinator.run_sweep`), so results are
  store-cacheable and **bit-identical** to the serial loop
  (pinned by ``tests/test_stability_differential.py``);
* :func:`screen_outliers` — MAD-based outlier screening (the modified
  z-score of Iglewicz & Hoaglin, PASTRAMI's robust screen).  Outliers are
  **flagged and reported, never silently dropped**: every row names the
  seeds it excluded from the headline interval;
* :func:`minimal_runs_mean` — the sequential minimal-runs estimator:
  draw sessions until the bootstrap CI half-width of the mean is ≤ ε
  (default 0.005, the κ resolution the paper's comparisons need) or a
  run cap is hit.  :func:`repro.sweep.coordinator.run_adaptive_sweep`
  applies the same rule to real environments on the pool;
* :func:`environment_stability` — the per-environment driver behind
  ``repro stability``, ``table2(ci=True)`` and the CI-aware validation
  tolerances: distributions, screen, decision and interval columns
  (``kappa_ci_low/high``, ``n_eff``, ``outliers``) in one result.

Calibration, not just coverage: the statistical claims here are tested as
*statistics* — ``tests/test_stability_calibration.py`` pins the bootstrap
CI's empirical coverage near nominal on known distributions and proves
the stopping rule terminates on stable series but refuses to on series
with an injected mean shift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from ..obs import metrics
from ..obs.trace import span
from .stats import SeedSweepResult, bootstrap_ci

if TYPE_CHECKING:  # import cycle: testbeds.base -> replay -> analysis
    from ..core.report import RunSeriesReport
    from ..testbeds.profiles import EnvironmentProfile

__all__ = [
    "OutlierScreen",
    "screen_outliers",
    "StabilityDecision",
    "ci_half_width",
    "minimal_runs_mean",
    "seed_sweep_parallel",
    "EnvironmentStability",
    "environment_stability",
    "stability_seed_plan",
    "stability_document",
    "write_stability_report",
    "STABILITY_REPORT_SCHEMA",
    "DEFAULT_EPSILON",
    "DEFAULT_OUTLIER_THRESHOLD",
]

#: Version of the ``stability.json`` document.
STABILITY_REPORT_SCHEMA = 1

#: Default CI half-width target: κ resolved to ±0.005 separates every
#: well-separated pair of Table-2 environments (the closest distinct
#: paper κ gap is ~0.01).
DEFAULT_EPSILON = 0.005

#: Default modified-z threshold; 3.5 is the Iglewicz–Hoaglin
#: recommendation PASTRAMI's screening follows.
DEFAULT_OUTLIER_THRESHOLD = 3.5

#: Consistency constant: median absolute deviation of a normal sample
#: estimates 0.6745σ, so |0.6745·(x−med)/MAD| is a z-score.
_MAD_Z = 0.6745
#: Mean-absolute-deviation fallback constant (MeanAD ≈ 0.7979σ).
_MEANAD_Z = 1.0 / 1.253314


# -- outlier screening -----------------------------------------------------

@dataclass(frozen=True)
class OutlierScreen:
    """A MAD screen over one sample: flags, never deletions.

    ``flags[k]`` marks ``values[k]`` as an outlier; callers decide what to
    do with the flag (the reporting path prints the flagged seeds next to
    the interval computed without them).
    """

    values: np.ndarray
    flags: np.ndarray
    median: float
    mad: float
    threshold: float

    @property
    def n_flagged(self) -> int:
        """How many values the screen flagged."""
        return int(self.flags.sum())

    def kept(self) -> np.ndarray:
        """The unflagged values (all values when everything is flagged —
        a degenerate screen must never leave the estimator with nothing)."""
        if self.n_flagged >= self.values.size:
            return self.values
        return self.values[~self.flags]


def screen_outliers(
    values, *, threshold: float = DEFAULT_OUTLIER_THRESHOLD
) -> OutlierScreen:
    """Flag outliers by modified z-score (MAD-based, PASTRAMI-style).

    A value is flagged when ``|0.6745 · (x − median) / MAD| > threshold``.
    When the MAD degenerates to zero (at least half the sample identical)
    the mean absolute deviation takes its place; when that is zero too the
    sample is constant and nothing is flagged.  Robust by construction:
    the screen's own scale estimate cannot be inflated by the outliers it
    is looking for.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise ValueError("need a one-dimensional, non-empty sample")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    med = float(np.median(v))
    dev = np.abs(v - med)
    mad = float(np.median(dev))
    if mad > 0.0:
        z = _MAD_Z * dev / mad
    else:
        meanad = float(dev.mean())
        z = _MEANAD_Z * dev / meanad if meanad > 0.0 else np.zeros_like(dev)
    flags = z > threshold
    if v.size < 3:
        # Two points cannot outvote each other; a screen needs a quorum.
        flags = np.zeros_like(flags)
    return OutlierScreen(
        values=v, flags=flags, median=med, mad=mad, threshold=threshold
    )


# -- the sequential stopping rule ------------------------------------------

@dataclass(frozen=True)
class StabilityDecision:
    """What the minimal-runs estimator decided, and on how much evidence."""

    #: True when the CI target was reached before the cap.
    stopped: bool
    #: Sessions actually consumed.
    n_used: int
    #: Final CI half-width of the mean.
    half_width: float
    #: The target half-width (0 = no target; screening only).
    eps: float
    #: Half-width after each check, in order — the convergence trace.
    history: tuple[float, ...]


def ci_half_width(
    values,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> float:
    """Half the bootstrap CI width of the mean — the stopping statistic."""
    lo, _, hi = bootstrap_ci(
        values, confidence=confidence, n_resamples=n_resamples, seed=seed
    )
    return (hi - lo) / 2.0


def minimal_runs_mean(
    draw,
    *,
    eps: float = DEFAULT_EPSILON,
    min_runs: int = 4,
    max_runs: int = 32,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    bootstrap_seed: int = 0,
) -> tuple[np.ndarray, StabilityDecision]:
    """Draw values until the mean's CI half-width is ≤ ``eps`` or a cap hits.

    ``draw(k)`` produces the k-th observation (a full record+replay
    session in the environment case; any expensive scalar measurement in
    general).  The rule: after at least ``min_runs`` draws, stop as soon
    as the ``confidence`` bootstrap CI of the running mean has half-width
    at most ``eps``; give up (``stopped=False``) at ``max_runs``.

    A series whose mean *shifts* mid-stream keeps inflating its own
    variance estimate, so the rule refuses to stop on it — drift is
    answered with "unstable", never with a tight interval around a
    meaningless mean (calibrated by ``tests/test_stability_calibration.py``
    against :func:`repro.analysis.changepoints.detect_series_steps`).
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_runs < 3:
        raise ValueError("min_runs must be >= 3 (below that the bootstrap "
                         "interval degenerates to the sample range)")
    if max_runs < min_runs:
        raise ValueError("max_runs must be >= min_runs")
    values: list[float] = []
    history: list[float] = []
    stopped = False
    while len(values) < max_runs:
        values.append(float(draw(len(values))))
        if len(values) < min_runs:
            continue
        hw = ci_half_width(
            values,
            confidence=confidence,
            n_resamples=n_resamples,
            seed=bootstrap_seed,
        )
        history.append(hw)
        if hw <= eps:
            stopped = True
            break
    decision = StabilityDecision(
        stopped=stopped,
        n_used=len(values),
        half_width=history[-1] if history else float("inf"),
        eps=eps,
        history=tuple(history),
    )
    return np.asarray(values), decision


# -- the pool-parallel seed sweep ------------------------------------------

def stability_seed_plan(base_seed: int, count: int) -> tuple[int, ...]:
    """The seed list a stability screen derives from a scenario's seed.

    Consecutive seeds starting at the registered one: seed k of the plan
    is ``base_seed + k``, so element 0 reproduces the exact series the
    table and figure drivers consume (and hits their store entries), and
    adaptive extension (`max(seeds) + 1, ...`) continues the same stream.
    Distinct integer seeds yield independent realizations — every series
    derives its streams from its own spawned :class:`numpy.random.SeedSequence`.
    """
    if count < 1:
        raise ValueError("need at least one seed")
    return tuple(int(base_seed) + k for k in range(int(count)))


def _series_values(reports, component: str) -> np.ndarray:
    """Per-seed mean of one metric, exactly as the serial sweep computes it."""
    return np.asarray([rep.values(component).mean() for rep in reports])


def seed_sweep_parallel(
    profile: "EnvironmentProfile",
    seeds,
    *,
    n_runs: int = 3,
    jobs: int | None = None,
    store=None,
    resume: bool = True,
) -> SeedSweepResult:
    """The pool-parallel (and store-cacheable) twin of :func:`seed_sweep`.

    Each seed's session — record, ``n_runs`` replays, Section-3 analysis —
    is one independent work unit fanned out over the persistent worker
    pool via the sweep coordinator; ``store`` (an
    :class:`repro.sweep.ArtifactStore` or ``None``) makes the sessions
    durable under the same content digests ``repro sweep`` uses.  The
    returned :class:`~repro.analysis.stats.SeedSweepResult` is
    **bit-identical** to the serial loop's at any job count, cold or warm
    (``tests/test_stability_differential.py``).

    Unlike the serial path this one requires a store-canonicalizable
    profile (no custom ``workload`` callables) — the same restriction
    ``repro sweep`` carries, because the fan-out rides its work units.
    """
    from ..sweep.coordinator import plan_unit, run_sweep

    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    plan = [plan_unit(profile.name, profile, s, n_runs) for s in seeds]
    with span(
        "stability.seed_sweep",
        environment=profile.name,
        n_seeds=len(seeds),
        n_runs=n_runs,
    ):
        result = run_sweep(plan, store, jobs=jobs, resume=resume)
    metrics.counter("stability.seeds_computed").add(len(seeds))
    return SeedSweepResult(
        environment=profile.name,
        seeds=seeds,
        kappa=_series_values(result.series, "kappa"),
        i_values=_series_values(result.series, "I"),
        l_values=_series_values(result.series, "L"),
    )


# -- the per-environment stability driver ----------------------------------

@dataclass(frozen=True)
class EnvironmentStability:
    """One environment's κ distribution, screen and stopping decision."""

    environment: str
    seeds: tuple[int, ...]
    n_runs: int
    #: Per-seed session means (seed order), one array per metric.
    kappa: np.ndarray
    u_values: np.ndarray
    o_values: np.ndarray
    i_values: np.ndarray
    l_values: np.ndarray
    #: The MAD screen over the per-seed κ means.
    screen: OutlierScreen
    #: The sequential stopping decision (``eps=0``: screening-only).
    decision: StabilityDecision
    confidence: float

    @property
    def n_eff(self) -> int:
        """Seeds contributing to the headline interval (unflagged)."""
        return len(self.seeds) - self.screen.n_flagged

    def outlier_seeds(self) -> tuple[int, ...]:
        """The seeds the screen flagged (reported, never dropped)."""
        return tuple(
            int(s) for s, f in zip(self.seeds, self.screen.flags) if f
        )

    def interval(self) -> tuple[float, float, float]:
        """``(low, mean, high)`` over the screened κ sample."""
        return bootstrap_ci(self.screen.kept(), confidence=self.confidence)

    def sweep_result(self) -> SeedSweepResult:
        """The plain seed-sweep view (for diffing against the serial path)."""
        return SeedSweepResult(
            environment=self.environment,
            seeds=self.seeds,
            kappa=self.kappa,
            i_values=self.i_values,
            l_values=self.l_values,
        )

    def row(self) -> dict:
        """The interval-bearing Table-2-style row."""
        lo, mean, hi = self.interval()
        return {
            "environment": self.environment,
            "U": float(self.u_values.mean()),
            "O": float(self.o_values.mean()),
            "I": float(self.i_values.mean()),
            "L": float(self.l_values.mean()),
            "kappa": mean,
            "kappa_ci_low": lo,
            "kappa_ci_high": hi,
            "kappa_spread": float(self.kappa.max() - self.kappa.min()),
            "n_eff": self.n_eff,
            "outliers": self.screen.n_flagged,
        }

    def to_doc(self) -> dict:
        """The JSON-ready block for :func:`stability_document`."""
        lo, mean, hi = self.interval()
        return {
            "environment": self.environment,
            "seeds": [int(s) for s in self.seeds],
            "n_runs": int(self.n_runs),
            "kappa": [float(v) for v in self.kappa],
            "U": [float(v) for v in self.u_values],
            "O": [float(v) for v in self.o_values],
            "I": [float(v) for v in self.i_values],
            "L": [float(v) for v in self.l_values],
            "kappa_mean": float(mean),
            "kappa_ci_low": float(lo),
            "kappa_ci_high": float(hi),
            "kappa_spread": float(self.kappa.max() - self.kappa.min()),
            "confidence": float(self.confidence),
            "n_eff": int(self.n_eff),
            "outlier_seeds": [int(s) for s in self.outlier_seeds()],
            "stopped": bool(self.decision.stopped),
            "half_width": float(self.decision.half_width),
            "eps": float(self.decision.eps),
            "history": [float(h) for h in self.decision.history],
        }


def environment_stability(
    profile: "EnvironmentProfile",
    *,
    seeds=None,
    n_runs: int = 3,
    jobs: int | None = None,
    store=None,
    resume: bool = True,
    eps: float = 0.0,
    max_seeds: int = 12,
    batch: int | None = None,
    confidence: float = 0.95,
    outlier_threshold: float = DEFAULT_OUTLIER_THRESHOLD,
) -> EnvironmentStability:
    """Screen one environment's κ stability over many seeded sessions.

    ``eps=0`` (the default) evaluates exactly the given ``seeds`` (default:
    four consecutive seeds from 0) and reports distribution + screen.
    ``eps>0`` turns on the sequential rule: after the initial seeds, new
    sessions are appended — ``batch`` at a time, pool-parallel, via
    :func:`repro.sweep.coordinator.run_adaptive_sweep` — until the κ CI
    half-width is ≤ ``eps`` or ``max_seeds`` sessions have run.

    The screen (:func:`screen_outliers`) runs over the final per-seed κ
    means; flagged seeds are excluded from the headline interval but stay
    in every reported distribution.
    """
    from ..sweep.coordinator import run_adaptive_sweep

    if seeds is None:
        seeds = stability_seed_plan(0, 4)
    seeds = tuple(int(s) for s in seeds)
    with span(
        "stability.environment",
        environment=profile.name,
        n_seeds=len(seeds),
        eps=eps,
    ):
        adaptive = run_adaptive_sweep(
            profile.name,
            profile,
            initial_seeds=seeds,
            n_runs=n_runs,
            eps=eps,
            max_seeds=max_seeds,
            batch=batch,
            store=store,
            jobs=jobs,
            resume=resume,
            confidence=confidence,
        )
        screen = screen_outliers(adaptive.values, threshold=outlier_threshold)
    metrics.counter("stability.environments").add()
    if screen.n_flagged:
        metrics.counter("stability.outliers_flagged").add(screen.n_flagged)
    all_seeds = tuple(u.seed for u in adaptive.plan)
    decision = StabilityDecision(
        stopped=adaptive.stopped,
        n_used=len(all_seeds),
        half_width=adaptive.half_width,
        eps=eps,
        history=adaptive.history,
    )
    return EnvironmentStability(
        environment=profile.name,
        seeds=all_seeds,
        n_runs=n_runs,
        kappa=adaptive.values,
        u_values=_series_values(adaptive.series, "U"),
        o_values=_series_values(adaptive.series, "O"),
        i_values=_series_values(adaptive.series, "I"),
        l_values=_series_values(adaptive.series, "L"),
        screen=screen,
        decision=decision,
        confidence=confidence,
    )


# -- the machine-readable report -------------------------------------------

def stability_document(
    blocks: list[tuple[str, EnvironmentStability]], params: dict
) -> dict:
    """The deterministic ``stability.json`` payload.

    ``blocks`` pairs each result with the scenario key that produced it
    (so the document is self-describing enough to recompute — the CI
    smoke job diffs it against a from-scratch serial ``seed_sweep``).
    Bytes depend only on the plan and the simulated content, exactly like
    ``sweep.json``.
    """
    return {
        "schema": STABILITY_REPORT_SCHEMA,
        "kind": "stability-report",
        "params": dict(params),
        "environments": [
            dict(result.to_doc(), scenario=key) for key, result in blocks
        ],
    }


def write_stability_report(doc: dict, telemetry: dict, outdir):
    """Write ``stability.json`` (deterministic) + ``stability_telemetry.json``.

    Mirrors :func:`repro.sweep.coordinator.write_sweep_report`: the report
    bytes are diffable across job counts and cache states; everything
    run-dependent lives in the telemetry sidecar.
    """
    import json
    from pathlib import Path

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    report_path = outdir / "stability.json"
    report_path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
    telemetry_path = outdir / "stability_telemetry.json"
    telemetry_path.write_text(
        json.dumps(telemetry, sort_keys=True, indent=1) + "\n"
    )
    return report_path, telemetry_path
