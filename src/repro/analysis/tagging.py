"""The 16-byte trailer tags (Section 6) and their int64 packing.

The paper stamps each replayed packet with a unique 16-byte trailer that
encodes the emitting replay node; the analysis then uses the tag as the
packet's identity ("we stamped each packet with a unique trailer and used
that to define a packet", Section 3).

The simulator carries tags as int64 (see
:func:`repro.net.pktarray.make_tags`): replayer id in bits 48+, sequence
number in bits 0-47.  This module converts between that packed form, its
components, and the wire-format 16-byte trailer (packed id+sequence plus
a checksum over the pair — corrupted trailers must not alias another
packet, they must fail to parse, which is how a corrupted packet becomes
"missing" for the U metric).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

__all__ = [
    "split_tags",
    "join_tags",
    "tag_to_trailer",
    "trailer_to_tag",
    "TrailerError",
]

_SEQ_BITS = 48
_SEQ_MASK = (1 << _SEQ_BITS) - 1
_TRAILER = struct.Struct("<qII")
assert _TRAILER.size == 16


class TrailerError(ValueError):
    """Raised when a wire trailer fails validation (corrupted packet)."""


def split_tags(tags: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(replayer ids, sequence numbers) of packed tags, vectorized."""
    tags = np.asarray(tags, dtype=np.int64)
    return (tags >> _SEQ_BITS).astype(np.int64), (tags & _SEQ_MASK).astype(np.int64)


def join_tags(replayer_ids: np.ndarray, sequences: np.ndarray) -> np.ndarray:
    """Pack component arrays back into int64 tags."""
    rid = np.asarray(replayer_ids, dtype=np.int64)
    seq = np.asarray(sequences, dtype=np.int64)
    if np.any(rid < 0) or np.any(rid >= 1 << 15):
        raise ValueError("replayer ids must fit in 15 bits")
    if np.any(seq < 0) or np.any(seq > _SEQ_MASK):
        raise ValueError("sequence numbers must fit in 48 bits")
    return (rid << _SEQ_BITS) | seq


def tag_to_trailer(tag: int) -> bytes:
    """The 16-byte wire trailer for one packed tag."""
    tag = int(tag)
    body = struct.pack("<q", tag)
    crc = zlib.crc32(body)
    return _TRAILER.pack(tag, crc, 0xC401125)


def trailer_to_tag(trailer: bytes) -> int:
    """Parse and validate a wire trailer back to its packed tag.

    Raises :class:`TrailerError` on length, checksum, or marker mismatch —
    the caller counts such packets as missing/corrupted (metric ``U``).
    """
    if len(trailer) != 16:
        raise TrailerError(f"trailer must be 16 bytes, got {len(trailer)}")
    tag, crc, marker = _TRAILER.unpack(trailer)
    if marker != 0xC401125:
        raise TrailerError("trailer marker mismatch")
    if zlib.crc32(struct.pack("<q", tag)) != crc:
        raise TrailerError("trailer checksum mismatch (corrupted packet)")
    return tag
