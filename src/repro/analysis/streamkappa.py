"""Streaming κ: the full metric vector — **including O** — over a live stream.

:class:`~repro.analysis.streaming.StreamingComparison` streams L and I but
*guarantees* U = O = 0 through an aligned-captures precondition, because
the LCS behind the ordering metric is a global property of the whole
permutation: no chunk-local bound survives a single far-moved packet.
This module lifts that restriction for the one regime the ROADMAP's
online-monitoring story actually needs: a **known baseline** (the recorded
trial A every repeat is compared against) and a run B arriving chunk by
chunk.

Two comparators, two memory stories:

:class:`StreamKappa` — *exact*, O(|A| + common-so-far) state.
    At every chunk boundary :meth:`StreamKappa.result` equals
    ``compare_trials(A, B_prefix).metrics`` **bit for bit** — every float
    of U, O, L, I and κ, for any chunking of the same packets.  Three
    constructions make that possible:

    * **Incremental matching.**  Matching keys are ``(tag, occurrence)``
      (:mod:`repro.core.matching`); with A fixed, a B packet's key is
      final the moment it arrives — a per-tag occurrence counter plus a
      packed-key binary search into A's sorted keys resolves each chunk's
      matches vectorized, independent of chunk boundaries.
    * **Streaming O via positions, not ranks.**  The batch metric runs the
      canonical patience LIS over *A-side ranks in B order*; ranks of
      earlier packets shift as later matches arrive, so ranks don't
      stream.  A-side *positions* do: the map position → rank over the
      final common set is a strictly increasing bijection, and patience
      state (pile indices, tie-breaks, predecessor links) depends only on
      the relative order of distinct values — so running the prefix-
      patience merge of :mod:`repro.parallel.ordershard` over the position
      sequence, one :func:`~repro.parallel.ordershard.patience_block_values`
      block per chunk, holds the *exact* serial patience state (indices
      and links, element for element) the batch path would compute at
      every prefix.
    * **Batch-identical reductions.**  Per-packet Δl/Δg are computed with
      the identical elementwise operations, stored, reordered to A order
      at :meth:`~StreamKappa.result`, and fed to the *same* reduction
      functions (:func:`~repro.core.latency.latency_from_deltas`,
      :func:`~repro.core.iat.iat_from_deltas`,
      :func:`~repro.core.ordering.edit_script_from_keep`) the batch path
      runs — same floats in, same operation order, same floats out.

    The per-session state is honestly linear in the prefix: a global LIS
    needs its predecessor links.  Exactness costs O(session); boundedness
    is the monitor's job.

:class:`KappaMonitor` — *bounded*, O(window) state per session.
    Tracks N concurrent sessions; each session's baseline and run streams
    are cut into tumbling windows on their own relative timelines, a
    window closing when **both** streams have passed its end.  Each closed
    window gets a window-local :class:`~repro.core.kappa.MetricVector`
    (full Section-3 metrics of the window's packets, window-local
    normalizers — a *diagnostic* series, like :mod:`repro.core.windows`,
    not a decomposition of the whole-session κ), buffers are dropped at
    close, and the windowed κ history (a bounded ring) runs through
    :func:`repro.analysis.changepoints.detect_series_steps` to flag live
    degradations.  Window membership depends only on timestamps, so the
    per-window series is invariant to chunking too.

Both are instrumented with :mod:`repro.obs` spans and counters, wired to
``repro monitor`` in the CLI, and benchmarked by
``benchmarks/bench_streaming_kappa.py`` (throughput and peak per-session
bytes vs. session length).  See ``docs/streaming.md`` for the design
notes and the exactness argument in full.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.kappa import MetricVector
from ..core.matching import Matching, match_trials, occurrence_ranks
from ..core.iat import iat_from_deltas, iat_from_matching
from ..core.latency import latency_from_deltas, latency_from_matching
from ..core.ordering import (
    b_order_ranks,
    edit_script_from_keep,
    edit_script_from_matching,
    lis_indices_from_state,
    ordering_from_matching,
)
from ..core.trial import Trial
from ..core.uniqueness import uniqueness_from_matching
from ..core.windows import WindowedDeviation, deviation_from_deltas
from ..obs import metrics
from ..obs.trace import span
from ..parallel.ordershard import (
    PatienceState,
    merge_block_inplace,
    patience_block_values,
)
from .changepoints import detect_series_steps

__all__ = [
    "StreamKappa",
    "KappaMonitor",
    "WindowReport",
    "DegradationEvent",
]


class _Grow:
    """Append-only typed buffer with amortized-doubling capacity."""

    __slots__ = ("_buf", "_n")

    def __init__(self, dtype) -> None:
        self._buf = np.empty(16, dtype=dtype)
        self._n = 0

    def extend(self, values: np.ndarray) -> None:
        need = self._n + values.shape[0]
        if need > self._buf.shape[0]:
            buf = np.empty(max(need, 2 * self._buf.shape[0]), dtype=self._buf.dtype)
            buf[: self._n] = self._buf[: self._n]
            self._buf = buf
        self._buf[self._n : need] = values
        self._n = need

    def view(self) -> np.ndarray:
        return self._buf[: self._n]

    @property
    def nbytes(self) -> int:
        return int(self._buf.nbytes)


class StreamKappa:
    """Exact incremental Section-3 comparison against a known baseline.

    Feed the run's packets in arrival order via :meth:`update` (any chunk
    sizes); :meth:`result` at any chunk boundary returns the metric vector
    ``compare_trials(baseline, B_prefix).metrics`` would — bit-identical,
    including the global-LCS ordering metric O, which streams through the
    prefix-patience merge (module docstring has the argument).

    State grows as O(|baseline| + common packets seen): the global LIS
    keeps predecessor links per common packet.  For bounded-memory
    monitoring of long sessions use :class:`KappaMonitor`.
    """

    def __init__(self, baseline: Trial, *, run_label: str = "stream") -> None:
        self._a = baseline
        self.run_label = run_label

        tags = baseline.tags
        self._uniq_tags, inverse = (
            np.unique(tags, return_inverse=True)
            if tags.shape[0]
            else (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        ids_a = inverse.astype(np.int64, copy=False)
        occ_a = occurrence_ranks(ids_a)
        n_uniq = int(self._uniq_tags.shape[0])
        self._count_a = np.bincount(ids_a, minlength=max(n_uniq, 1)).astype(np.int64)
        # Packed (tag id, occurrence) keys, as in the batch matcher; K is
        # A-only (an occurrence >= K cannot match and never builds a key).
        self._k = int(occ_a.max(initial=-1)) + 2
        if n_uniq * self._k >= np.iinfo(np.int64).max:
            raise OverflowError(
                f"key space {n_uniq} ids x {self._k} occurrences overflows int64"
            )
        key_a = ids_a * self._k + occ_a
        order = np.argsort(key_a)
        self._key_sorted = key_a[order]
        self._pos_by_key = order.astype(np.int64, copy=False)

        # Per-baseline-packet series the delta math reads (precomputed with
        # the same elementwise ops the batch path uses).
        self._rel_a = baseline.relative_times_ns()
        self._iats_a = baseline.iats_ns()

        # Run-side running state.
        self._b_occ = np.zeros(max(n_uniq, 1), dtype=np.int64)
        self._n_b = 0
        self._first_b: float | None = None
        self._last_b = 0.0
        self._pos_a = _Grow(np.int64)
        self._pos_b = _Grow(np.int64)
        self._dl = _Grow(np.float64)
        self._dg = _Grow(np.float64)
        self._st = PatienceState(n=0)
        self._peak_bytes = self.state_bytes

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def update(self, tags, times_ns) -> None:
        """Consume one chunk of the run's packets, in arrival order.

        Chunk boundaries are invisible to the final metrics: any split of
        the same packet stream yields identical state (the property suite
        pins this bit-for-bit).  Raises ``ValueError`` on misshapen chunks
        or timestamps that go backwards (within the chunk or across the
        stream) — a trial is a sequence in arrival order.
        """
        tags = np.ascontiguousarray(tags, dtype=np.int64)
        times = np.ascontiguousarray(times_ns, dtype=np.float64)
        if tags.ndim != 1 or times.ndim != 1 or tags.shape[0] != times.shape[0]:
            raise ValueError("tags and times_ns must be equal-length 1-D arrays")
        n = int(tags.shape[0])
        if n == 0:
            return
        if not np.all(np.isfinite(times)):
            raise ValueError("times_ns must be finite")
        if np.any(np.diff(times) < 0) or (
            self._n_b > 0 and times[0] < self._last_b
        ):
            raise ValueError(
                "times_ns must be non-decreasing across the stream: a trial "
                "is the sequence of packets in arrival order"
            )

        with span("analysis.stream.update", n=n):
            if self._first_b is None:
                self._first_b = float(times[0])
                prev_t = float(times[0])
            else:
                prev_t = self._last_b
            # Gap vs. the previous packet of the *full* stream — one packet
            # of carry; the paper's base case zeroes the very first gap.
            g_b = np.diff(times, prepend=prev_t)
            if self._n_b == 0:
                g_b[0] = 0.0

            matched = self._match_chunk(tags, times, g_b)

            self._last_b = float(times[-1])
            self._n_b += n
            metrics.counter("stream.chunks").add(1)
            metrics.counter("stream.packets").add(n)
            metrics.counter("stream.matched").add(matched)
            cur = self.state_bytes
            if cur > self._peak_bytes:
                self._peak_bytes = cur

    def _match_chunk(self, tags, times, g_b) -> int:
        """Resolve one chunk's matches and fold them into all running state."""
        n = tags.shape[0]
        n_uniq = self._uniq_tags.shape[0]
        if n_uniq == 0:
            return 0
        idx = np.clip(np.searchsorted(self._uniq_tags, tags), 0, n_uniq - 1)
        present = self._uniq_tags[idx] == tags
        ids_in = idx[present].astype(np.int64, copy=False)
        # Occurrence rank within the whole run stream: within-chunk rank
        # among equal tags plus the running per-tag count.  Tags outside A
        # never collide with in-A tags, so restricting to `present` is
        # exact.
        occ_in = occurrence_ranks(ids_in) + self._b_occ[ids_in]
        keep = occ_in < self._count_a[ids_in]
        np.add.at(self._b_occ, ids_in, 1)
        n_new = int(np.count_nonzero(keep))
        if n_new == 0:
            return 0

        key = ids_in[keep] * self._k + occ_in[keep]
        pos_a_new = self._pos_by_key[np.searchsorted(self._key_sorted, key)]
        pos_b_chunk = self._n_b + np.arange(n, dtype=np.int64)
        pos_b_new = pos_b_chunk[present][keep]

        # Per-packet deltas, elementwise-identical to the batch path.
        t_new = times[present][keep]
        dl_new = (t_new - self._first_b) - self._rel_a[pos_a_new]
        dg_new = g_b[present][keep] - self._iats_a[pos_a_new]

        # Streaming O: the chunk's matched A-positions are one patience
        # block folded into the live prefix state (ordershard docstring:
        # "accumulated state == serial state over the processed prefix").
        blk = patience_block_values(pos_a_new, self._pos_a._n)
        merge_block_inplace(self._st, blk, pos_a_new)

        self._pos_a.extend(pos_a_new)
        self._pos_b.extend(pos_b_new)
        self._dl.extend(dl_new)
        self._dg.extend(dg_new)
        return n_new

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def matching(self) -> Matching:
        """The exact batch :class:`~repro.core.matching.Matching` of the prefix."""
        pos_a = self._pos_a.view()
        order = np.argsort(pos_a, kind="stable")
        return Matching(
            idx_a=pos_a[order].astype(np.intp, copy=False),
            idx_b=self._pos_b.view()[order].astype(np.intp, copy=False),
            len_a=len(self._a),
            len_b=self._n_b,
        )

    def result(self) -> MetricVector:
        """The metric vector of ``(baseline, stream prefix)`` — batch-exact.

        Equals ``compare_trials(baseline, prefix).metrics`` bit for bit at
        every chunk boundary: the matching, the canonical LIS keep-mask
        (walked out of the live patience state) and the Δl/Δg arrays are
        reassembled in A order and pushed through the *same* reduction
        functions the batch path runs.
        """
        with span("analysis.stream.result", n_common=self._pos_a._n):
            m = self.matching()
            n_c = m.n_common
            u = uniqueness_from_matching(m)

            keep = np.zeros(n_c, dtype=bool)
            if n_c:
                keep[
                    lis_indices_from_state(
                        self._st.tails_idx[: self._st.tlen], self._st.prev
                    )
                ] = True
            script = edit_script_from_keep(m, b_order_ranks(m), keep)
            o = ordering_from_matching(m, script)

            if n_c == 0:
                lat = iat = 0.0
            else:
                order = np.argsort(self._pos_a.view(), kind="stable")
                span_ns = max(
                    self._last_b - self._a.start_ns,
                    self._a.end_ns - self._first_b,
                    self._a.duration_ns,
                    self._last_b - self._first_b,
                )
                lat = latency_from_deltas(self._dl.view()[order], n_c, span_ns)
                denom = (self._last_b - self._first_b) + (
                    self._a.end_ns - self._a.start_ns
                )
                iat = iat_from_deltas(self._dg.view()[order], n_c, denom)
            return MetricVector(u, o, lat, iat)

    def windowed(self, window_ns: float) -> WindowedDeviation:
        """Per-window |Δl|/|Δg| deviation series over the prefix, batch-exact.

        Runs the same aggregation as
        :func:`repro.core.windows.windowed_deviation` on the accumulated
        deltas, so the series equals the batch one on the same prefix.
        """
        if self._a.is_empty:
            raise ValueError("baseline trial is empty")
        pos_a = self._pos_a.view()
        order = np.argsort(pos_a, kind="stable")
        return deviation_from_deltas(
            self._rel_a,
            pos_a[order].astype(np.intp, copy=False),
            np.abs(self._dl.view()[order]),
            np.abs(self._dg.view()[order]),
            window_ns,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_packets(self) -> int:
        """Run packets consumed so far."""
        return self._n_b

    @property
    def n_common(self) -> int:
        """Common packets matched so far (``|A ∩ B_prefix|``)."""
        return self._pos_a._n

    @property
    def state_bytes(self) -> int:
        """Bytes of live mutable state (excluding the baseline arrays)."""
        st = self._st
        return int(
            self._b_occ.nbytes
            + self._pos_a.nbytes
            + self._pos_b.nbytes
            + self._dl.nbytes
            + self._dg.nbytes
            + st.tails_vals.nbytes
            + st.tails_idx.nbytes
            + st.prev.nbytes
        )

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`state_bytes` over the stream so far."""
        return self._peak_bytes


# ----------------------------------------------------------------------
# Bounded multi-session monitoring
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WindowReport:
    """One closed monitoring window of one session.

    ``vector`` holds the window-local Section-3 metrics (window-local
    normalizers — a diagnostic series, not a decomposition of the
    whole-session κ; see the module docstring).
    """

    session: str
    index: int
    start_ns: float
    window_ns: float
    n_baseline: int
    n_run: int
    vector: MetricVector

    @property
    def kappa(self) -> float:
        """Equation 5 of this window's local vector."""
        return self.vector.kappa()


@dataclass(frozen=True)
class DegradationEvent:
    """A flagged downward step in a session's windowed κ series."""

    session: str
    window: int
    kappa_step: float
    kappa_before: float
    kappa_after: float


def _window_vector(a: Trial, b: Trial) -> MetricVector:
    """Window-local metric vector (full Section-3 math on the window's packets)."""
    m = match_trials(a, b)
    script = edit_script_from_matching(m)
    return MetricVector(
        uniqueness_from_matching(m),
        ordering_from_matching(m, script),
        latency_from_matching(a, b, m),
        iat_from_matching(a, b, m),
    )


class _Session:
    """One monitored session: per-window buffers plus a bounded κ ring."""

    __slots__ = (
        "epoch_a", "epoch_b", "rel_last_a", "rel_last_b", "buffers",
        "next_close", "kappas", "ring_start", "flagged", "peak", "done",
    )

    def __init__(self) -> None:
        self.epoch_a: float | None = None
        self.epoch_b: float | None = None
        self.rel_last_a = -1.0
        self.rel_last_b = -1.0
        # window index -> [tags_a chunks, times_a chunks, tags_b, times_b]
        self.buffers: dict[int, list[list[np.ndarray]]] = {}
        self.next_close = 0
        self.kappas: list[float] = []
        self.ring_start = 0
        self.flagged: set[int] = set()
        self.peak = 0
        self.done = False

    def bytes_now(self) -> int:
        total = 8 * len(self.kappas)
        for parts in self.buffers.values():
            for chunks in parts:
                total += sum(c.nbytes for c in chunks)
        return total


class KappaMonitor:
    """Live windowed κ for many concurrent sessions, with bounded state.

    Each *session* is one (baseline, run) stream pair, fed incrementally
    via :meth:`feed_baseline` / :meth:`feed_run` (any chunk sizes; the
    per-window series is chunking-invariant).  Both streams are cut into
    tumbling ``window_ns`` windows on their own relative timelines; a
    window closes — returning a :class:`WindowReport` — once both streams
    have moved past its end, and its buffers are freed immediately, so
    per-session memory is O(open windows · window packets), not
    O(session length).  The windowed κ history (bounded ring of
    ``history`` values) is scanned after every close by
    :func:`~repro.analysis.changepoints.detect_series_steps`; downward
    steps of at least ``min_kappa_step`` raise :class:`DegradationEvent`
    entries in :attr:`degraded`.

    Windows are matched locally: a packet pair straddling a window
    boundary counts as missing on both sides of it.  That is the price of
    bounded memory, and why the series is a monitoring diagnostic — exact
    whole-session metrics come from :class:`StreamKappa`.
    """

    def __init__(
        self,
        window_ns: float,
        *,
        min_kappa_step: float = 0.02,
        z_threshold: float = 6.0,
        history: int = 128,
        min_windows: int = 8,
        max_open_windows: int = 64,
    ) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        if min_kappa_step <= 0 or z_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if history < min_windows or min_windows < 4:
            raise ValueError("need history >= min_windows >= 4")
        if max_open_windows < 1:
            raise ValueError("max_open_windows must be >= 1")
        self.window_ns = float(window_ns)
        self.min_kappa_step = float(min_kappa_step)
        self.z_threshold = float(z_threshold)
        self.history = int(history)
        self.min_windows = int(min_windows)
        self.max_open_windows = int(max_open_windows)
        #: session -> degradation events, in detection order.
        self.degraded: dict[str, list[DegradationEvent]] = {}
        self._sessions: dict[str, _Session] = {}

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed_baseline(self, session: str, tags, times_ns) -> list[WindowReport]:
        """Feed one chunk of a session's baseline stream; return closed windows."""
        return self._feed(session, "a", tags, times_ns)

    def feed_run(self, session: str, tags, times_ns) -> list[WindowReport]:
        """Feed one chunk of a session's run stream; return closed windows."""
        return self._feed(session, "b", tags, times_ns)

    def _feed(self, session: str, side: str, tags, times_ns) -> list[WindowReport]:
        tags = np.ascontiguousarray(tags, dtype=np.int64)
        times = np.ascontiguousarray(times_ns, dtype=np.float64)
        if tags.ndim != 1 or times.ndim != 1 or tags.shape[0] != times.shape[0]:
            raise ValueError("tags and times_ns must be equal-length 1-D arrays")
        s = self._sessions.get(session)
        if s is None:
            s = self._sessions[session] = _Session()
            metrics.gauge("monitor.sessions").set(len(self._sessions))
        if s.done:
            raise ValueError(f"session {session!r} is already finished")
        if tags.shape[0] == 0:
            return []

        epoch = s.epoch_a if side == "a" else s.epoch_b
        rel_last = s.rel_last_a if side == "a" else s.rel_last_b
        if epoch is None:
            epoch = float(times[0])
        rel = times - epoch
        if np.any(np.diff(rel) < 0) or rel[0] < max(rel_last, 0.0):
            raise ValueError("times_ns must be non-decreasing across the stream")

        # Group the chunk's packets by window; buffered slices are copies,
        # so the caller's (possibly huge) chunk array is never pinned.
        win = (rel / self.window_ns).astype(np.int64)
        cuts = np.flatnonzero(np.diff(win)) + 1
        off = 0 if side == "a" else 2
        for seg_tags, seg_times, w in zip(
            np.split(tags, cuts), np.split(times, cuts), win[np.r_[0, cuts]]
        ):
            parts = s.buffers.get(int(w))
            if parts is None:
                parts = s.buffers[int(w)] = [[], [], [], []]
            parts[off].append(seg_tags.copy())
            parts[off + 1].append(seg_times.copy())

        if side == "a":
            s.epoch_a, s.rel_last_a = epoch, float(rel[-1])
        else:
            s.epoch_b, s.rel_last_b = epoch, float(rel[-1])
        metrics.counter("monitor.packets").add(int(tags.shape[0]))

        reports = self._close_ready(session, s)
        open_hi = max(s.buffers, default=s.next_close)
        if open_hi - s.next_close + 1 > self.max_open_windows:
            raise RuntimeError(
                f"session {session!r} holds {open_hi - s.next_close + 1} open "
                f"windows (> {self.max_open_windows}): one stream is lagging "
                "too far behind for bounded-memory monitoring"
            )
        cur = s.bytes_now()
        if cur > s.peak:
            s.peak = cur
        return reports

    def _close_ready(self, session: str, s: _Session) -> list[WindowReport]:
        """Close every window both streams have fully passed."""
        reports = []
        if s.epoch_a is None or s.epoch_b is None:
            return reports
        ready = min(s.rel_last_a, s.rel_last_b)
        while (s.next_close + 1) * self.window_ns <= ready:
            reports.append(self._close(session, s, s.next_close))
            s.next_close += 1
        return reports

    def _close(self, session: str, s: _Session, w: int) -> WindowReport:
        parts = s.buffers.pop(w, None) or [[], [], [], []]
        empty_t = np.empty(0, dtype=np.int64)
        empty_ns = np.empty(0, dtype=np.float64)
        tags_a = np.concatenate(parts[0]) if parts[0] else empty_t
        times_a = np.concatenate(parts[1]) if parts[1] else empty_ns
        tags_b = np.concatenate(parts[2]) if parts[2] else empty_t
        times_b = np.concatenate(parts[3]) if parts[3] else empty_ns
        with span("analysis.monitor.window", session=session, window=w):
            vec = _window_vector(Trial(tags_a, times_a), Trial(tags_b, times_b))
        kappa = vec.kappa()
        # Publish the freshest windowed κ to the live observation channel
        # (/metrics, counter tracks) — one labeled gauge per session.
        # Observation only: nothing here feeds back into any metric.
        from ..obs.live import LIVE_GAUGES

        LIVE_GAUGES.set("monitor.window_kappa", {"session": session}, kappa)
        LIVE_GAUGES.set(
            "monitor.window_index", {"session": session}, float(w)
        )
        s.kappas.append(kappa)
        drop = len(s.kappas) - self.history
        if drop > 0:
            del s.kappas[:drop]
            s.ring_start += drop
        metrics.counter("monitor.windows").add(1)
        self._detect(session, s)
        return WindowReport(
            session=session,
            index=w,
            start_ns=w * self.window_ns,
            window_ns=self.window_ns,
            n_baseline=int(tags_a.shape[0]),
            n_run=int(tags_b.shape[0]),
            vector=vec,
        )

    def _detect(self, session: str, s: _Session) -> None:
        """Scan the κ ring for fresh downward steps; record new events."""
        if len(s.kappas) < self.min_windows:
            return
        steps = detect_series_steps(
            np.asarray(s.kappas),
            min_step=self.min_kappa_step,
            z_threshold=self.z_threshold,
        )
        for step in steps:
            g = s.ring_start + step.index
            if step.step_ns >= 0 or g in s.flagged:
                continue
            s.flagged.add(g)
            self.degraded.setdefault(session, []).append(
                DegradationEvent(
                    session=session,
                    window=g,
                    kappa_step=step.step_ns,
                    kappa_before=step.mean_before_ns,
                    kappa_after=step.mean_after_ns,
                )
            )
            metrics.counter("monitor.degradations").add(1)

    # ------------------------------------------------------------------
    # End of stream and introspection
    # ------------------------------------------------------------------
    def finish(self, session: str) -> list[WindowReport]:
        """Declare a session's streams ended; close and return all open windows."""
        s = self._sessions.get(session)
        if s is None:
            raise KeyError(f"unknown session {session!r}")
        reports = []
        if not s.done:
            last = max(s.buffers, default=s.next_close - 1)
            while s.next_close <= last:
                reports.append(self._close(session, s, s.next_close))
                s.next_close += 1
            s.done = True
            cur = s.bytes_now()
            if cur > s.peak:
                s.peak = cur
        return reports

    @property
    def sessions(self) -> list[str]:
        """Session names seen so far, in first-feed order."""
        return list(self._sessions)

    def kappa_history(self, session: str) -> np.ndarray:
        """The retained windowed κ ring of a session (most recent windows)."""
        return np.asarray(self._sessions[session].kappas, dtype=np.float64)

    def window_count(self, session: str) -> int:
        """Number of windows closed for a session so far."""
        return self._sessions[session].next_close

    def peak_bytes(self, session: str) -> int:
        """High-water mark of a session's buffered state, in bytes."""
        return self._sessions[session].peak
