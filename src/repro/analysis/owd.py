"""One-way delay analysis: recording TX stamps vs capture RX stamps.

A Choir node's recording stores per-burst TSC transmit times; the
recorder's capture stores per-packet receive times.  On a PTP-disciplined
deployment (the paper's setting) both sides share an epoch to within the
sync residual, so joining them per packet yields the one-way-delay (OWD)
series — the measurement that separates *path* effects (queueing: OWD
grows) from *clock* effects (sync steps: OWD jumps but packets still
flow) and from *scheduling* effects (bursts leaving late: OWD spikes
burst-aligned).

Note the systematic offsets: the recorded "tx time" is the doorbell
(software enqueue), so OWD includes the NIC DMA pull; and any PTP
residual shifts the whole series.  Absolute OWD therefore carries an
offset, but its *structure over time* — trends, steps, burst alignment —
is exactly what a debugger needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trial import Trial
from ..replay.recording import Recording

__all__ = ["OwdSeries", "owd_series"]


@dataclass(frozen=True)
class OwdSeries:
    """One-way delays of the packets common to a recording and a capture."""

    tags: np.ndarray
    tx_ns: np.ndarray
    rx_ns: np.ndarray

    def __post_init__(self) -> None:
        if not (self.tags.shape == self.tx_ns.shape == self.rx_ns.shape):
            raise ValueError("series arrays must share one shape")

    @property
    def delays_ns(self) -> np.ndarray:
        """Per-packet one-way delay (includes the systematic offsets)."""
        return self.rx_ns - self.tx_ns

    @property
    def n_packets(self) -> int:
        return int(self.tags.shape[0])

    def summary(self) -> dict:
        """Percentile summary of the delay distribution."""
        d = self.delays_ns
        if d.size == 0:
            return {"n": 0}
        return {
            "n": int(d.size),
            "min_ns": float(d.min()),
            "p50_ns": float(np.percentile(d, 50)),
            "p99_ns": float(np.percentile(d, 99)),
            "max_ns": float(d.max()),
            "spread_ns": float(d.max() - d.min()),
        }

    def trend_ppm(self) -> float:
        """Linear drift of OWD over the capture, in parts per million.

        A non-zero trend means the two clocks run at different rates (or
        a queue is steadily filling); least squares over tx time.
        """
        if self.n_packets < 2:
            return 0.0
        x = self.tx_ns - self.tx_ns[0]
        slope = np.polyfit(x, self.delays_ns, 1)[0]
        return float(slope * 1e6)


def owd_series(recording: Recording, capture: Trial) -> OwdSeries:
    """Join a recording's TX times with a capture's RX times per packet.

    Packets missing from the capture (drops) are simply absent from the
    series; order follows the recording (send order).
    """
    rec_tags = recording.packets.tags
    _, rec_idx, cap_idx = np.intersect1d(
        rec_tags, capture.tags, assume_unique=False, return_indices=True
    )
    order = np.argsort(rec_idx, kind="stable")
    rec_idx = rec_idx[order]
    cap_idx = cap_idx[order]
    return OwdSeries(
        tags=rec_tags[rec_idx],
        tx_ns=recording.packets.times_ns[rec_idx].astype(np.float64),
        rx_ns=capture.times_ns[cap_idx].astype(np.float64),
    )
