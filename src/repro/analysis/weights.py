"""Section 8.2's metric-balance refinement, made concrete.

The paper observes that κ's linear combination lets I "somewhat overpower"
L ("L varies within 1e-5 while I varies within 1e-1") and leaves
weighting/non-linear scaling to future work.  This module implements one
principled instance: **exponent balancing**.  Given the observed dynamic
range of each component across a set of environments, choose per-component
exponents so every component's observed maximum maps to a common target
value.  Because each exponent acts on a [0, 1] quantity, the rescaled
components stay in [0, 1] and κ keeps its range — unlike naive weight
inflation, which would break the normalization.

``balanced_scaling`` returns a :class:`~repro.core.kappa.KappaScaling`
directly usable with ``MetricVector.kappa(scaling)`` /
``PairReport.kappa_scaled(scaling)``.
"""

from __future__ import annotations

import math

from ..core.kappa import KappaScaling
from ..core.report import RunSeriesReport

__all__ = ["component_ranges", "balanced_scaling"]

_COMPONENTS = ("U", "O", "L", "I")


def component_ranges(reports: list[RunSeriesReport]) -> dict[str, float]:
    """Observed maximum of each metric component across environments."""
    if not reports:
        raise ValueError("need at least one report")
    out = {}
    for c in _COMPONENTS:
        out[c] = float(max(r.values(c).max() for r in reports))
    return out


def _exponent_for(observed_max: float, target: float) -> float:
    """Exponent mapping ``observed_max`` to ``target`` on [0, 1].

    ``x ** e`` with ``e = ln(target)/ln(max)``.  Degenerate inputs (max of
    0, or already ≥ target) keep the identity exponent — a component that
    never fires shouldn't be amplified into noise.
    """
    if observed_max <= 0.0 or observed_max >= 1.0:
        return 1.0
    if observed_max >= target:
        return 1.0
    return math.log(target) / math.log(observed_max)


def balanced_scaling(
    reports: list[RunSeriesReport], *, target: float = 0.5
) -> KappaScaling:
    """A KappaScaling whose exponents equalize component dynamic ranges.

    After balancing, the environment with the worst observed value of any
    component scores that component at ``target``; components therefore
    influence κ comparably instead of the raw-magnitude ordering where I
    dwarfs L by four decades.
    """
    if not 0 < target < 1:
        raise ValueError("target must be in (0, 1)")
    ranges = component_ranges(reports)
    return KappaScaling(
        u_exponent=_exponent_for(ranges["U"], target),
        o_exponent=_exponent_for(ranges["O"], target),
        l_exponent=_exponent_for(ranges["L"], target),
        i_exponent=_exponent_for(ranges["I"], target),
    )
