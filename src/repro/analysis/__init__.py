"""Offline analysis pipeline: captures, tagging, comparison, rendering.

The simulation-side equivalent of the paper's Jupyter artifact: save per-
run captures, reload them, run the Section-3 analysis, and render the
tables, figures, and text reports.
"""

from .capture import CaptureFormatError, capture_info, read_capture, write_capture
from .changepoints import LatencyStep, detect_latency_steps, detect_series_steps
from .owd import OwdSeries, owd_series
from .compare import analyze_directory, load_series, render_report, save_series
from .pcap import MIN_FRAME_BYTES, PcapReadResult, read_pcap, write_pcap
from .pcapng import PcapngReadResult, read_pcapng, write_pcapng
from .stability import (
    EnvironmentStability,
    OutlierScreen,
    StabilityDecision,
    ci_half_width,
    environment_stability,
    minimal_runs_mean,
    screen_outliers,
    seed_sweep_parallel,
    stability_seed_plan,
)
from .stats import SeedSweepResult, bootstrap_ci, seed_sweep
from .streaming import StreamingComparison, stream_compare
from .streamkappa import DegradationEvent, KappaMonitor, StreamKappa, WindowReport
from .tracestats import TraceStats, detect_bursts, trace_stats
from .weights import balanced_scaling, component_ranges
from .tables import render_table1, render_table2, table1_rows, table2_rows
from .tagging import (
    TrailerError,
    join_tags,
    split_tags,
    tag_to_trailer,
    trailer_to_tag,
)
from .textplot import format_si, render_histogram, render_metric_rows, render_series_table

__all__ = [
    "write_capture",
    "read_capture",
    "capture_info",
    "CaptureFormatError",
    "save_series",
    "load_series",
    "analyze_directory",
    "render_report",
    "split_tags",
    "join_tags",
    "tag_to_trailer",
    "trailer_to_tag",
    "TrailerError",
    "table1_rows",
    "render_table1",
    "table2_rows",
    "render_table2",
    "render_histogram",
    "render_series_table",
    "render_metric_rows",
    "format_si",
    "write_pcap",
    "read_pcap",
    "PcapReadResult",
    "MIN_FRAME_BYTES",
    "write_pcapng",
    "read_pcapng",
    "PcapngReadResult",
    "bootstrap_ci",
    "seed_sweep",
    "SeedSweepResult",
    "seed_sweep_parallel",
    "screen_outliers",
    "OutlierScreen",
    "minimal_runs_mean",
    "ci_half_width",
    "StabilityDecision",
    "environment_stability",
    "EnvironmentStability",
    "stability_seed_plan",
    "balanced_scaling",
    "component_ranges",
    "StreamingComparison",
    "stream_compare",
    "StreamKappa",
    "KappaMonitor",
    "WindowReport",
    "DegradationEvent",
    "detect_series_steps",
    "TraceStats",
    "trace_stats",
    "detect_bursts",
    "LatencyStep",
    "detect_latency_steps",
    "OwdSeries",
    "owd_series",
]
