"""ASCII rendering of the paper's histogram figures.

The benchmark harness prints each figure's data series; this module also
renders them as terminal histograms so a human can eyeball the shapes the
paper shows (the ±10 ns core, the symmetric outlier lobes, the longer
tails of the parallel-replayer and FABRIC runs) without a plotting stack.
"""

from __future__ import annotations

import numpy as np

from ..core.histograms import DeltaHistogram

__all__ = ["render_histogram", "render_series_table", "format_si"]


def format_si(value_ns: float) -> str:
    """Human-scale formatting of a nanosecond quantity (signed)."""
    if value_ns == 0:
        return "0"
    sign = "-" if value_ns < 0 else ""
    v = abs(value_ns)
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if v >= scale:
            return f"{sign}{v / scale:.3g}{unit}"
    return f"{sign}{v:.3g}ns"


def render_histogram(
    hist: DeltaHistogram,
    *,
    width: int = 50,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render one delta histogram as rows of bars (non-empty bins only).

    ``log_y`` compresses the y-axis logarithmically, matching how the
    paper's figures make sub-percent lobes visible next to the dominant
    central bin.
    """
    rows = hist.nonzero_rows()
    if not rows:
        return f"{title or hist.label}: (no packets)\n"
    pcts = np.array([p for _, p in rows])
    if log_y:
        floor = max(pcts[pcts > 0].min() / 10.0, 1e-7)
        heights = np.log10(pcts / floor)
        heights = heights / heights.max() if heights.max() > 0 else heights
    else:
        heights = pcts / pcts.max()
    out = []
    if title:
        out.append(title)
    for (center, pct), h in zip(rows, heights):
        bar = "#" * max(1, int(round(h * width)))
        out.append(f"{format_si(center):>9s} | {bar:<{width}s} {pct:7.3f}%")
    return "\n".join(out) + "\n"


def render_series_table(
    histograms: list[DeltaHistogram],
    *,
    min_pct: float = 0.0,
) -> str:
    """Side-by-side percent columns for several runs over shared bins.

    This is the figure's underlying data: one row per bin (skipping rows
    where every run is ≤ ``min_pct``), one column per run.
    """
    if not histograms:
        return "(no runs)\n"
    bins = histograms[0].bins
    for h in histograms[1:]:
        if h.bins != bins:
            raise ValueError("histograms must share bin edges to tabulate")
    centers = bins.centers()
    pcts = np.stack([h.percent for h in histograms])
    header = f"{'delta':>10s} " + " ".join(f"{h.label or '?':>9s}" for h in histograms)
    lines = [header]
    for i, c in enumerate(centers):
        col = pcts[:, i]
        if np.all(col <= min_pct):
            continue
        cells = " ".join(f"{v:9.4f}" for v in col)
        lines.append(f"{format_si(float(c)):>10s} {cells}")
    return "\n".join(lines) + "\n"


def render_metric_rows(rows: list[dict], columns: list[str] | None = None) -> str:
    """Fixed-width table of metric-row dicts (Table 1/2 style printing)."""
    if not rows:
        return "(no rows)\n"
    columns = columns or list(rows[0].keys())
    widths = {}
    rendered = []
    for row in rows:
        cells = {}
        for c in columns:
            v = row.get(c, "")
            if isinstance(v, float):
                cells[c] = f"{v:.4g}" if (abs(v) >= 1e-3 or v == 0) else f"{v:.3e}"
            else:
                cells[c] = str(v)
        rendered.append(cells)
    for c in columns:
        widths[c] = max(len(c), *(len(r[c]) for r in rendered))
    header = "  ".join(f"{c:>{widths[c]}s}" for c in columns)
    lines = [header, "-" * len(header)]
    for r in rendered:
        lines.append("  ".join(f"{r[c]:>{widths[c]}s}" for c in columns))
    return "\n".join(lines) + "\n"


# Re-export for discoverability alongside the renderers.
__all__.append("render_metric_rows")
