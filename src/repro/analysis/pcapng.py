"""pcapng (next-generation capture) interoperability.

Modern capture tools (wireshark/dumpcap, recent tcpdump) emit pcapng by
default, so the reproduction reads and writes it alongside classic pcap
(:mod:`repro.analysis.pcap`).  The implemented subset is the one real
captures of this kind use:

* one **Section Header Block** (little-endian, version 1.0);
* one **Interface Description Block** (Ethernet) carrying the
  ``if_tsresol`` option set to nanoseconds;
* one **Enhanced Packet Block** per packet.

Reading tolerates what the wild produces: unknown block types are
skipped, microsecond interfaces are rescaled, multiple interfaces are
accepted (timestamp resolution resolved per interface), and the Choir
trailer validation from the classic-pcap reader applies unchanged —
corrupted trailers count toward ``U``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.trial import Trial
from .pcap import _frame_template
from .tagging import TrailerError, tag_to_trailer, trailer_to_tag

__all__ = ["write_pcapng", "read_pcapng", "PcapngReadResult"]

_SHB_TYPE = 0x0A0D0D0A
_IDB_TYPE = 0x00000001
_EPB_TYPE = 0x00000006
_BYTE_ORDER_MAGIC = 0x1A2B3C4D
_LINKTYPE_ETHERNET = 1
_TRAILER = 16


def _pad4(n: int) -> int:
    return (4 - n % 4) % 4


def _option(code: int, payload: bytes) -> bytes:
    return struct.pack("<HH", code, len(payload)) + payload + b"\0" * _pad4(len(payload))


def _block(block_type: int, body: bytes) -> bytes:
    total = 12 + len(body)
    return struct.pack("<II", block_type, total) + body + struct.pack("<I", total)


def write_pcapng(
    trial: Trial,
    path: str | Path,
    *,
    frame_bytes: int = 1400,
    snaplen: int = 65535,
) -> Path:
    """Export a trial as a nanosecond-resolution pcapng file.

    Frame synthesis matches the classic-pcap writer (valid Ethernet/IPv4/
    UDP with the Choir trailer last).
    """
    path = Path(path)
    if len(trial) and float(trial.times_ns[0]) < 0:
        raise ValueError("pcapng timestamps are unsigned; shift the trial to >= 0")

    # SHB: magic, version 1.0, section length unknown (-1).
    shb_body = struct.pack("<IHHq", _BYTE_ORDER_MAGIC, 1, 0, -1)
    # IDB: linktype, reserved, snaplen, if_tsresol=9 (1e-9), opt_endofopt.
    idb_body = (
        struct.pack("<HHI", _LINKTYPE_ETHERNET, 0, snaplen)
        + _option(9, bytes([9]))  # if_tsresol: 10^-9
        + _option(0, b"")
    )

    template = _frame_template(frame_bytes)
    parts = [_block(_SHB_TYPE, shb_body), _block(_IDB_TYPE, idb_body)]
    frame = bytearray(template.tobytes())
    for tag, t in zip(trial.tags.tolist(), trial.times_ns.tolist()):
        frame[-_TRAILER:] = tag_to_trailer(int(tag))
        ts = int(round(t))
        body = (
            struct.pack(
                "<IIIII",
                0,  # interface id
                (ts >> 32) & 0xFFFFFFFF,
                ts & 0xFFFFFFFF,
                frame_bytes,
                frame_bytes,
            )
            + bytes(frame)
            + b"\0" * _pad4(frame_bytes)
        )
        parts.append(_block(_EPB_TYPE, body))
    path.write_bytes(b"".join(parts))
    return path


@dataclass(frozen=True)
class PcapngReadResult:
    """A parsed pcapng capture with corruption accounting."""

    trial: Trial
    n_frames: int
    n_corrupted: int
    n_foreign: int
    n_skipped_blocks: int


def _tsresol_scale_ns(opt_payload: bytes) -> float:
    """ns per timestamp unit from an if_tsresol option value."""
    if not opt_payload:
        return 1_000.0  # default pcapng resolution: microseconds
    v = opt_payload[0]
    if v & 0x80:
        return 1e9 / (2 ** (v & 0x7F))
    return 1e9 / (10**v)


def read_pcapng(path: str | Path, *, label: str = "") -> PcapngReadResult:
    """Parse a pcapng file back into a trial via the Choir trailers."""
    raw = Path(path).read_bytes()
    if len(raw) < 28 or struct.unpack_from("<I", raw, 0)[0] != _SHB_TYPE:
        raise ValueError(f"{path}: not a pcapng file")
    magic = struct.unpack_from("<I", raw, 8)[0]
    if magic != _BYTE_ORDER_MAGIC:
        raise ValueError(f"{path}: unsupported byte order {magic:#x}")

    iface_scale: list[float] = []
    tags: list[int] = []
    times: list[float] = []
    n_frames = n_corrupted = n_foreign = n_skipped = 0

    off = 0
    total = len(raw)
    while off + 12 <= total:
        btype, blen = struct.unpack_from("<II", raw, off)
        if blen < 12 or blen % 4 or off + blen > total:
            raise ValueError(f"{path}: malformed block at byte {off}")
        body = raw[off + 8 : off + blen - 4]
        off += blen

        if btype == _SHB_TYPE:
            continue
        if btype == _IDB_TYPE:
            scale = 1_000.0  # default microseconds
            # Walk options after the 8-byte fixed part.
            o = 8
            while o + 4 <= len(body):
                code, olen = struct.unpack_from("<HH", body, o)
                payload = body[o + 4 : o + 4 + olen]
                o += 4 + olen + _pad4(olen)
                if code == 0:
                    break
                if code == 9:
                    scale = _tsresol_scale_ns(payload)
            iface_scale.append(scale)
            continue
        if btype != _EPB_TYPE:
            n_skipped += 1
            continue

        iface, ts_hi, ts_lo, captured, _orig = struct.unpack_from("<IIIII", body, 0)
        if iface >= len(iface_scale):
            raise ValueError(f"{path}: EPB references undefined interface {iface}")
        frame = body[20 : 20 + captured]
        n_frames += 1
        if captured < _TRAILER:
            n_foreign += 1
            continue
        try:
            tag = trailer_to_tag(frame[-_TRAILER:])
        except TrailerError:
            n_corrupted += 1
            continue
        tags.append(tag)
        times.append(((ts_hi << 32) | ts_lo) * iface_scale[iface])

    trial = Trial.from_arrival_events(
        np.asarray(tags, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
        label=label,
    )
    return PcapngReadResult(
        trial=trial,
        n_frames=n_frames,
        n_corrupted=n_corrupted,
        n_foreign=n_foreign,
        n_skipped_blocks=n_skipped,
    )
