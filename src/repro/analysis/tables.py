"""Renderers for the paper's two tables.

* **Table 1** — distances packets were moved in the edit scripts of the
  local dual-replayer runs: one row per repeat run with mean (σ),
  absolute mean (σ), min and max of the signed move distances.
* **Table 2** — the mean ``U, O, I, L, κ`` of every environment, in the
  order the paper presents them.
"""

from __future__ import annotations

from ..core.report import RunSeriesReport
from .textplot import render_metric_rows

__all__ = ["table1_rows", "render_table1", "table2_rows", "render_table2"]


def table1_rows(report: RunSeriesReport) -> list[dict]:
    """Table 1 rows from a dual-replayer series report."""
    rows = []
    for p in report.pairs:
        ms = p.move_stats
        rows.append(
            {
                "Run": p.run_label,
                "Mean": ms.mean,
                "(sigma)": ms.std,
                "Abs. Mean": ms.abs_mean,
                "(abs sigma)": ms.abs_std,
                "Min": ms.min,
                "Max": ms.max,
                "n_moved": ms.n_moved,
            }
        )
    return rows


def render_table1(report: RunSeriesReport) -> str:
    """Table 1 as fixed-width text."""
    header = (
        "Table 1: distances packets were moved in the edit scripts\n"
        f"transforming each run to run {report.baseline_label} "
        f"({report.environment}).\n"
    )
    return header + render_metric_rows(table1_rows(report))


def table2_rows(reports: list[RunSeriesReport]) -> list[dict]:
    """Table 2 rows: one mean-metrics row per environment report."""
    return [r.mean_row() for r in reports]


def render_table2(reports: list[RunSeriesReport]) -> str:
    """Table 2 as fixed-width text, environments in presentation order."""
    header = "Table 2: mean Section-3 metrics for each environment.\n"
    return header + render_metric_rows(
        table2_rows(reports), columns=["environment", "U", "O", "I", "L", "kappa"]
    )
