"""Statistical utilities for consistency studies.

The paper reports 4-run means per environment; a reproduction should also
quantify how *stable* those means are — across runs (bootstrap intervals)
and across the whole record/replay realization (seed sweeps).  These
utilities back the seed-variance benchmark and are available to users
evaluating their own environments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from ..core.report import compare_series

if TYPE_CHECKING:  # import cycle: testbeds.base -> replay -> analysis
    from ..testbeds.profiles import EnvironmentProfile

__all__ = ["bootstrap_ci", "SeedSweepResult", "seed_sweep"]


def bootstrap_ci(
    values,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Percentile-bootstrap CI of the mean: ``(low, mean, high)``.

    Suitable for the tiny per-environment samples here (4 repeat runs);
    with n < 3 the interval degenerates to the sample range.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("need at least one value")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(v.mean())
    if v.size < 3:
        return float(v.min()), mean, float(v.max())
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, v.size, size=(n_resamples, v.size))
    means = v[idx].mean(axis=1)
    alpha = (1 - confidence) / 2
    lo, hi = np.quantile(means, [alpha, 1 - alpha])
    return float(lo), mean, float(hi)


@dataclass(frozen=True)
class SeedSweepResult:
    """Per-seed environment means, plus cross-seed dispersion."""

    environment: str
    seeds: tuple[int, ...]
    kappa: np.ndarray
    i_values: np.ndarray
    l_values: np.ndarray

    def kappa_spread(self) -> float:
        """Max − min κ across seeds: realization-to-realization wobble."""
        return float(self.kappa.max() - self.kappa.min())

    def row(self) -> dict:
        lo, mean, hi = bootstrap_ci(self.kappa)
        return {
            "environment": self.environment,
            "n_seeds": len(self.seeds),
            "kappa_mean": mean,
            "kappa_ci_low": lo,
            "kappa_ci_high": hi,
            "kappa_spread": self.kappa_spread(),
            "I_mean": float(self.i_values.mean()),
        }


def seed_sweep(
    profile: "EnvironmentProfile",
    seeds,
    *,
    n_runs: int = 3,
) -> SeedSweepResult:
    """Rerun an environment under several seeds; collect the mean metrics.

    Each seed is an entirely fresh realization — new recording, new
    per-run imperfections — so the dispersion measures how much the
    *environment characterization itself* (not just a run pair) varies.
    """
    from ..testbeds.base import Testbed

    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    kappas, i_vals, l_vals = [], [], []
    for seed in seeds:
        trials = Testbed(profile, seed=seed).run_series(n_runs)
        rep = compare_series(trials, environment=profile.name)
        kappas.append(rep.values("kappa").mean())
        i_vals.append(rep.values("I").mean())
        l_vals.append(rep.values("L").mean())
    return SeedSweepResult(
        environment=profile.name,
        seeds=seeds,
        kappa=np.asarray(kappas),
        i_values=np.asarray(i_vals),
        l_values=np.asarray(l_vals),
    )
