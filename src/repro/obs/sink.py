"""Streaming span sink: bounded-memory, incremental trace files.

The in-memory tracer (:mod:`repro.obs.trace`) buffers spans until the
process exits and exports them in one shot — the right shape for a
table regeneration, the wrong one for the ROADMAP's long-running
monitors and sweeps: a ``repro monitor`` watching sessions for hours
would hold every span forever (or, past ``MAX_BUFFERED_SPANS``, drop
them) and export nothing until it died.

:class:`SpanSink` inverts that: spans and counter samples are *offered*
into a **bounded ring** and a background **flusher thread** writes them
incrementally to disk, so a trace of arbitrary length holds O(capacity)
memory and the file is useful the moment it is written.  Contracts, in
priority order:

1. **Never block the engine.**  :meth:`SpanSink.offer_span` /
   :meth:`SpanSink.offer_counter` are lock-append-notify; when the ring
   is full (the flusher can't keep up) the event is **dropped and
   counted** (``dropped`` / the ``obs.sink.dropped`` counter), never
   silently and never by stalling the caller.
2. **Bounded memory.**  Queued events never exceed ``capacity``; the
   high-water mark is tracked (``high_water``) and written into the
   trailing metadata, so a trace is self-describing about how close it
   came to dropping (``tests/test_obs_live.py`` pins flatness at 10×
   span count).
3. **Crash-useful files.**  Both formats are append-ordered: the JSONL
   file is valid line-by-line at any truncation point, and the Chrome
   file uses the ``trace_event`` *JSON Array Format*, which Perfetto
   loads even without its closing bracket.  A clean :meth:`close`
   appends a ``trace_meta`` instant event (run metadata, drop count,
   high-water mark, event tally) and the closing bracket.

Formats (chosen from the path suffix, or forced with ``fmt=``):

* ``chrome`` (``*.json``) — a JSON array of ``trace_event`` objects:
  ``ph:"X"`` complete events for spans, ``ph:"C"`` counter events for
  sampled metrics (one Perfetto counter track per metric name),
  ``ph:"M"`` ``process_name`` metadata on first sight of each pid, and
  one final ``ph:"i"`` ``trace_meta`` instant event.
* ``jsonl`` (``*.jsonl``) — one JSON object per line: spans in the
  :func:`repro.obs.export.spans_jsonl` schema plus ``type`` markers
  (``span`` / ``counter`` / ``meta``) for ``jq``/pandas digestion.

Install with :func:`repro.obs.trace.install_sink`; from a shell, every
CLI command takes ``--stream-trace FILE`` (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from . import metrics, trace

__all__ = ["SpanSink", "DEFAULT_CAPACITY", "DEFAULT_FLUSH_INTERVAL_S"]

#: Default ring capacity: ~8k queued events is a few MB at most, while a
#: flusher servicing a local file drains thousands of events per tick.
DEFAULT_CAPACITY = 8192

#: Default flusher wake-up period.  The flusher also wakes on every
#: enqueue past half capacity, so the interval only bounds file latency,
#: not memory.
DEFAULT_FLUSH_INTERVAL_S = 0.05

# Internal event kinds queued in the ring.
_SPAN = 0
_COUNTER = 1


class SpanSink:
    """Bounded ring + background flusher writing spans/counters to a file.

    ``path`` decides the format (``*.jsonl`` → JSONL, anything else →
    Chrome array) unless ``fmt`` (``"chrome"``/``"jsonl"``) overrides it.
    ``autostart=False`` leaves the flusher stopped — the deterministic
    mode the backpressure tests use; call :meth:`start` (or
    :meth:`close`, which flushes synchronously) yourself.
    """

    def __init__(
        self,
        path,
        *,
        fmt: str | None = None,
        capacity: int = DEFAULT_CAPACITY,
        flush_interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
        autostart: bool = True,
    ) -> None:
        self.path = Path(path)
        if fmt is None:
            fmt = "jsonl" if self.path.suffix == ".jsonl" else "chrome"
        if fmt not in ("chrome", "jsonl"):
            raise ValueError(f"unknown sink format {fmt!r}")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.fmt = fmt
        self.capacity = int(capacity)
        self.flush_interval_s = float(flush_interval_s)
        #: Epoch-ns origin of the Chrome timeline (sink creation time).
        self.origin_ns = time.time_ns()

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: list[tuple] = []
        self._dropped = 0
        self._high_water = 0
        self._written = 0
        self._closed = False
        self._stopping = False
        self._thread: threading.Thread | None = None
        self._io_error: BaseException | None = None

        # Writer-thread-only state (no lock needed: one consumer).
        self._seen_pids: set[int] = set()
        self._first_event = True
        self._file = open(self.path, "w", encoding="utf-8")
        if self.fmt == "chrome":
            self._file.write("[\n")
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Producer side (engine threads)
    # ------------------------------------------------------------------
    def offer_span(self, record: trace.SpanRecord) -> bool:
        """Enqueue one finished span; False (and a counted drop) when full."""
        return self._offer((_SPAN, record))

    def offer_counter(
        self, name: str, ts_ns: int, value: float, pid: int | None = None
    ) -> bool:
        """Enqueue one counter sample (a ``ph:"C"`` event / JSONL line)."""
        if pid is None:
            pid = os.getpid()
        return self._offer((_COUNTER, name, int(ts_ns), float(value), pid))

    def _offer(self, item: tuple) -> bool:
        with self._cond:
            if self._closed or len(self._queue) >= self.capacity:
                self._dropped += 1
                metrics.counter("obs.sink.dropped").add()
                return False
            self._queue.append(item)
            depth = len(self._queue)
            if depth > self._high_water:
                self._high_water = depth
            if depth >= self.capacity // 2 or self._stopping:
                self._cond.notify()
        return True

    # ------------------------------------------------------------------
    # Flusher side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background flusher (idempotent)."""
        with self._lock:
            if self._thread is not None or self._closed:
                return
            self._thread = threading.Thread(
                target=self._run, name="repro-span-sink", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._queue and not self._stopping:
                    self._cond.wait(timeout=self.flush_interval_s)
                batch, self._queue = self._queue, []
                stopping = self._stopping
            if batch:
                self._write_batch(batch)
            if stopping and not batch:
                return

    def _write_batch(self, batch: list[tuple]) -> None:
        if self._io_error is not None:
            with self._lock:
                self._dropped += len(batch)
            return
        try:
            lines = []
            for item in batch:
                if item[0] == _SPAN:
                    lines.extend(self._span_lines(item[1]))
                else:
                    lines.append(self._counter_line(item))
            self._emit_lines(lines)
            self._file.flush()
            with self._lock:
                self._written += len(batch)
        except OSError as exc:  # disk full / closed fd: count, don't crash
            self._io_error = exc
            metrics.counter("obs.sink.io_errors").add()
            with self._lock:
                self._dropped += len(batch)

    def _emit_lines(self, lines: list[str]) -> None:
        if self.fmt == "jsonl":
            self._file.write("".join(line + "\n" for line in lines))
            return
        for line in lines:
            if self._first_event:
                self._first_event = False
                self._file.write(line)
            else:
                self._file.write(",\n" + line)

    def _span_lines(self, s: trace.SpanRecord) -> list[str]:
        if self.fmt == "jsonl":
            doc = {
                "type": "span",
                "name": s.name,
                "start_ns": s.start_ns,
                "dur_ns": s.dur_ns,
                "cpu_ns": s.cpu_ns,
                "pid": s.pid,
                "tid": s.tid,
            }
            if s.attrs:
                doc["attrs"] = s.attrs
            return [json.dumps(doc)]
        lines = []
        if s.pid not in self._seen_pids:
            self._seen_pids.add(s.pid)
            parent = os.getpid()
            label = "repro (parent)" if s.pid == parent else f"worker {s.pid}"
            lines.append(json.dumps({
                "name": "process_name", "ph": "M", "pid": s.pid, "tid": 0,
                "args": {"name": label},
            }))
        args = dict(s.attrs)
        args["cpu_ms"] = s.cpu_ns / 1e6
        lines.append(json.dumps({
            "name": s.name,
            "cat": "repro",
            "ph": "X",
            "ts": max(0.0, (s.start_ns - self.origin_ns) / 1e3),
            "dur": s.dur_ns / 1e3,
            "pid": s.pid,
            "tid": s.tid,
            "args": args,
        }))
        return lines

    def _counter_line(self, item: tuple) -> str:
        _, name, ts_ns, value, pid = item
        if self.fmt == "jsonl":
            return json.dumps({
                "type": "counter", "name": name, "ts_ns": ts_ns,
                "value": value, "pid": pid,
            })
        return json.dumps({
            "name": name,
            "cat": "repro",
            "ph": "C",
            "ts": max(0.0, (ts_ns - self.origin_ns) / 1e3),
            "pid": pid,
            "tid": 0,
            "args": {"value": value},
        })

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    def close(self, *, meta: dict | None = None) -> None:
        """Flush everything, append the trailing metadata, close the file.

        Idempotent.  When the flusher never started (``autostart=False``
        and no :meth:`start`), the queue is drained synchronously here —
        nothing offered before ``close`` is lost.
        """
        with self._cond:
            if self._closed:
                return
            self._stopping = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()
        # Synchronous drain covers the never-started case (and is a no-op
        # after a joined flusher: the queue is empty).
        with self._lock:
            batch, self._queue = self._queue, []
        if batch:
            self._write_batch(batch)
        with self._lock:
            self._closed = True
        doc = dict(trace.get_meta())
        if meta:
            doc.update(meta)
        doc.setdefault("parent_pid", os.getpid())
        doc.update(
            sink_dropped=self._dropped,
            sink_high_water=self._high_water,
            sink_events_written=self._written,
        )
        try:
            if self.fmt == "jsonl":
                self._file.write(json.dumps({"type": "meta", **doc}) + "\n")
            else:
                self._emit_lines([json.dumps({
                    "name": "trace_meta",
                    "ph": "i",
                    "s": "g",
                    "ts": max(0.0, (time.time_ns() - self.origin_ns) / 1e3),
                    "pid": os.getpid(),
                    "tid": 0,
                    "args": doc,
                })])
                self._file.write("\n]\n")
            self._file.flush()
        except OSError:
            metrics.counter("obs.sink.io_errors").add()
        finally:
            self._file.close()

    @property
    def dropped(self) -> int:
        """Events dropped because the ring was full (or IO failed)."""
        with self._lock:
            return self._dropped

    @property
    def high_water(self) -> int:
        """Most events ever queued at once (≤ ``capacity`` by contract)."""
        with self._lock:
            return self._high_water

    @property
    def events_written(self) -> int:
        """Events successfully handed to the file so far."""
        with self._lock:
            return self._written

    @property
    def queued(self) -> int:
        """Events currently waiting for the flusher."""
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def io_error(self) -> BaseException | None:
        """The first write failure, if any (writes stop after it)."""
        return self._io_error

    def __enter__(self) -> "SpanSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
