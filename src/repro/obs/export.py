"""Exporters: Chrome ``trace_event`` JSON, JSONL span logs, stats tables.

Three consumers, three formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (JSON Object Format, complete ``"X"`` events),
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Parent and worker spans share one timeline; a metadata event names
  each process so the fan-out reads as "repro (parent)" plus its
  workers.
* :func:`spans_jsonl` / :func:`write_spans_jsonl` — one JSON object per
  span, flat, for ad-hoc ``jq``/pandas digestion.
* :func:`stats_table` — the human ``--stats`` rendering: per-stage wall
  aggregates, counters, gauges and log2 histograms.

Every export embeds the run metadata accumulated via
:func:`repro.obs.trace.set_meta` (seed, command, scale), so artifacts
are self-describing — a CI trace names the seed that produced it.

:func:`validate_chrome_trace` is the schema check the CI ``trace-smoke``
job runs; ``python -m repro.obs.export --validate FILE`` exposes it from
a shell.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from . import trace
from .metrics import REGISTRY, bucket_bounds, histogram_quantile

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "write_spans_jsonl",
    "stats_table",
    "validate_chrome_trace",
    "host_context",
    "usable_cores",
]


def usable_cores() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def host_context() -> dict:
    """The measurement-context block every performance artifact records.

    One schema for benchmark JSONs (``benchmarks/_emit.py`` delegates
    here) and sweep telemetry (:mod:`repro.sweep.coordinator`): a timing
    or speedup number is meaningless without the usable core count,
    affinity mask and pool start method it was measured under, so perf
    gates can condition on the machine actually measured.
    """
    import multiprocessing

    try:
        affinity = sorted(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        affinity = list(range(os.cpu_count() or 1))
    try:
        from ..parallel.pool import pool_start_method

        start_method = pool_start_method()
    except Exception:  # pragma: no cover - defensive
        start_method = multiprocessing.get_start_method()
    return {
        "usable_cores": usable_cores(),
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": affinity,
        "pool_start_method": start_method,
    }


def _spans_or_buffer(spans) -> list[trace.SpanRecord]:
    return trace.records() if spans is None else list(spans)


def chrome_trace(spans=None, *, meta: dict | None = None) -> dict:
    """The buffered spans as a Chrome ``trace_event`` JSON object.

    Timestamps are microseconds relative to the earliest event, so the
    timeline starts at zero regardless of wall-clock epoch.  ``spans``
    defaults to the process buffer; ``meta`` extends the accumulated
    run metadata.  Counter samples accumulated in
    :data:`repro.obs.live.COUNTER_EVENTS` (the ``--counter-tick`` path
    for one-shot ``--trace`` runs) merge in as ``ph:"C"`` events — one
    Perfetto counter track per metric name.
    """
    from .live import COUNTER_EVENTS

    spans = _spans_or_buffer(spans)
    counters = COUNTER_EVENTS.events()
    parent_pid = os.getpid()
    starts = [s.start_ns for s in spans] + [ts for _, ts, _, _ in counters]
    origin_ns = min(starts, default=0)
    events = []
    seen_pids: set[int] = set()
    for s in spans:
        if s.pid not in seen_pids:
            seen_pids.add(s.pid)
            label = "repro (parent)" if s.pid == parent_pid else f"worker {s.pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": s.pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        args = {k: v for k, v in s.attrs.items()}
        args["cpu_ms"] = s.cpu_ns / 1e6
        events.append(
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": (s.start_ns - origin_ns) / 1e3,
                "dur": s.dur_ns / 1e3,
                "pid": s.pid,
                "tid": s.tid,
                "args": args,
            }
        )
    for name, ts_ns, value, pid in counters:
        if pid not in seen_pids:
            seen_pids.add(pid)
            label = "repro (parent)" if pid == parent_pid else f"worker {pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        events.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "C",
                "ts": (ts_ns - origin_ns) / 1e3,
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            }
        )
    other = dict(trace.get_meta())
    if meta:
        other.update(meta)
    other.setdefault("parent_pid", parent_pid)
    other["n_spans"] = len(spans)
    other["dropped_spans"] = trace.BUFFER.dropped
    other["buffer_high_water"] = trace.BUFFER.high_water
    other["n_counter_events"] = len(counters)
    other["dropped_counter_events"] = COUNTER_EVENTS.dropped
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path, spans=None, *, meta: dict | None = None) -> Path:
    """Write :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans, meta=meta), indent=1))
    return path


def spans_jsonl(spans=None) -> str:
    """The spans as newline-delimited JSON objects (one per span)."""
    spans = _spans_or_buffer(spans)
    lines = []
    for s in spans:
        lines.append(
            json.dumps(
                {
                    "name": s.name,
                    "start_ns": s.start_ns,
                    "dur_ns": s.dur_ns,
                    "cpu_ns": s.cpu_ns,
                    "pid": s.pid,
                    "tid": s.tid,
                    **({"attrs": s.attrs} if s.attrs else {}),
                }
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(path, spans=None) -> Path:
    """Write :func:`spans_jsonl` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(spans_jsonl(spans))
    return path


def stats_table(spans=None, registry=None, *, meta: dict | None = None) -> str:
    """The human ``--stats`` rendering: stages, counters, histograms."""
    spans = _spans_or_buffer(spans)
    registry = REGISTRY if registry is None else registry
    snap = registry.snapshot()
    run_meta = dict(trace.get_meta())
    if meta:
        run_meta.update(meta)

    lines: list[str] = ["== repro run stats =="]
    if run_meta:
        lines.append(
            "meta: " + " ".join(f"{k}={v}" for k, v in sorted(run_meta.items()))
        )

    if spans:
        agg: dict[str, list[int]] = {}
        pids: set[int] = set()
        for s in spans:
            row = agg.setdefault(s.name, [0, 0, 0, 0])  # count, wall, cpu, max
            row[0] += 1
            row[1] += s.dur_ns
            row[2] += s.cpu_ns
            row[3] = max(row[3], s.dur_ns)
            pids.add(s.pid)
        lines.append(f"\nspans ({len(spans)} across {len(pids)} processes):")
        lines.append(
            f"  {'stage':<28s} {'count':>6s} {'wall ms':>10s} "
            f"{'mean ms':>9s} {'max ms':>9s} {'cpu ms':>10s}"
        )
        for name in sorted(agg, key=lambda n: -agg[n][1]):
            count, wall, cpu, mx = agg[name]
            lines.append(
                f"  {name:<28s} {count:>6d} {wall / 1e6:>10.3f} "
                f"{wall / count / 1e6:>9.3f} {mx / 1e6:>9.3f} {cpu / 1e6:>10.3f}"
            )

    if snap["counters"]:
        lines.append("\ncounters:")
        for name in sorted(snap["counters"]):
            lines.append(f"  {name:<32s} {snap['counters'][name]:>14d}")
    if snap["gauges"]:
        lines.append("\ngauges:")
        for name in sorted(snap["gauges"]):
            lines.append(f"  {name:<32s} {snap['gauges'][name]:>14g}")
    if snap["histograms"]:
        lines.append("\nhistograms (log2 ns buckets):")
        for name in sorted(snap["histograms"]):
            h = snap["histograms"][name]
            if not h["count"]:
                continue
            mean = h["total"] / h["count"]
            lines.append(
                f"  {name:<32s} count={h['count']} mean={mean / 1e6:.3f}ms "
                f"min={h['min'] / 1e6:.3f}ms max={h['max'] / 1e6:.3f}ms"
            )
            # Derived quantiles (log2-bucket interpolated estimates) so
            # the tail — the warm-pool first-task latency story for
            # pool.queue_wait_ns — is readable without a trace viewer.
            p50, p95, p99 = (
                histogram_quantile(h, q) for q in (0.50, 0.95, 0.99)
            )
            lines.append(
                f"    p50={p50 / 1e6:.3f}ms p95={p95 / 1e6:.3f}ms "
                f"p99={p99 / 1e6:.3f}ms (log2-bucket estimate)"
            )
            peaks = sorted(
                (i for i, c in enumerate(h["counts"]) if c),
                key=lambda i: -h["counts"][i],
            )[:3]
            for i in sorted(peaks):
                lo, hi = bucket_bounds(i)
                lines.append(
                    f"    [{lo / 1e6:>10.3f}ms, {hi / 1e6:>10.3f}ms) "
                    f"{h['counts'][i]:>8d}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Validation (the CI trace-smoke check).
# ----------------------------------------------------------------------

def validate_chrome_trace(
    source,
    *,
    min_worker_pids: int = 0,
    require_spans: tuple[str, ...] = (),
    require_counters: tuple[str, ...] = (),
    min_counter_events: int = 0,
) -> dict:
    """Check a trace file (or dict) against the ``trace_event`` schema.

    Accepts both trace shapes the toolkit writes: the **Object Format**
    (``{"traceEvents": [...], "otherData": {...}}`` from ``--trace``)
    and the **JSON Array Format** a streaming
    :class:`~repro.obs.sink.SpanSink` produces (``--stream-trace`` —
    a bare event array whose run metadata rides in the trailing
    ``trace_meta`` instant event).

    Raises :class:`ValueError` on any violation; returns a summary dict
    on success.  Checks, beyond per-event schema:

    * ``require_spans`` — span names that must appear;
    * ``min_worker_pids`` — least distinct non-parent pids (the
      acceptance check that a fan-out trace covers the workers);
    * counter (``ph:"C"``) events carry numeric non-negative ``ts`` and
      an ``args`` object of numeric values, and each ``(pid, name)``
      counter track's ``ts`` is non-decreasing;
    * ``require_counters`` / ``min_counter_events`` — counter-track
      coverage for live-telemetry smoke checks.

    The summary surfaces the trace's own drop accounting
    (``dropped_spans``, ``buffer_high_water`` — from ``otherData`` or
    the sink's ``sink_dropped``/``sink_high_water`` meta), so a
    truncated trace is detected, never silently partial.
    """
    if isinstance(source, (str, Path)):
        doc = json.loads(Path(source).read_text())
    else:
        doc = source
    if isinstance(doc, list):
        events = doc
        meta = {}
        for ev in reversed(events):
            if isinstance(ev, dict) and ev.get("name") == "trace_meta":
                meta = dict(ev.get("args") or {})
                break
    elif isinstance(doc, dict) and "traceEvents" in doc:
        events = doc["traceEvents"]
        meta = dict(doc.get("otherData") or {})
    else:
        raise ValueError(
            "not a trace_event document (expected an event array or an "
            "object with traceEvents)"
        )
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    names: set[str] = set()
    counter_names: set[str] = set()
    pids: set[int] = set()
    n_complete = 0
    n_counter = 0
    last_counter_ts: dict[tuple, float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} missing required key {key!r}")
        if ev["ph"] == "X":
            for key in ("ts", "dur"):
                if key not in ev or not isinstance(ev[key], (int, float)):
                    raise ValueError(f"complete event {i} missing numeric {key!r}")
            if ev["dur"] < 0 or ev["ts"] < 0:
                raise ValueError(f"complete event {i} has negative ts/dur")
            n_complete += 1
            names.add(ev["name"])
            pids.add(ev["pid"])
        elif ev["ph"] == "C":
            if "ts" not in ev or not isinstance(ev["ts"], (int, float)):
                raise ValueError(f"counter event {i} missing numeric 'ts'")
            if ev["ts"] < 0:
                raise ValueError(f"counter event {i} has negative ts")
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"counter event {i} needs a non-empty args object")
            for k, v in args.items():
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    raise ValueError(
                        f"counter event {i} arg {k!r} is not numeric"
                    )
            track = (ev["pid"], ev["name"])
            if ev["ts"] < last_counter_ts.get(track, float("-inf")):
                raise ValueError(
                    f"counter event {i} ts goes backwards on track {track}"
                )
            last_counter_ts[track] = ev["ts"]
            n_counter += 1
            counter_names.add(ev["name"])
        elif ev["ph"] not in ("M", "B", "E", "i"):
            raise ValueError(f"event {i} has unsupported phase {ev['ph']!r}")
    if n_complete == 0:
        raise ValueError("trace contains no complete (ph=X) span events")
    parent_pid = meta.get("parent_pid")
    worker_pids = pids - ({parent_pid} if parent_pid is not None else set())
    missing = [n for n in require_spans if n not in names]
    if missing:
        raise ValueError(f"trace is missing required span names: {missing}")
    missing_counters = [n for n in require_counters if n not in counter_names]
    if missing_counters:
        raise ValueError(
            f"trace is missing required counter tracks: {missing_counters}"
        )
    if n_counter < min_counter_events:
        raise ValueError(
            f"trace has {n_counter} counter events, "
            f"expected >= {min_counter_events}"
        )
    if len(worker_pids) < min_worker_pids:
        raise ValueError(
            f"trace covers {len(worker_pids)} worker pids, "
            f"expected >= {min_worker_pids}"
        )
    dropped = meta.get("dropped_spans", meta.get("sink_dropped"))
    high_water = meta.get("buffer_high_water", meta.get("sink_high_water"))
    return {
        "n_events": len(events),
        "n_spans": n_complete,
        "n_counter_events": n_counter,
        "span_names": sorted(names),
        "counter_names": sorted(counter_names),
        "parent_pid": parent_pid,
        "worker_pids": sorted(worker_pids),
        "dropped_spans": dropped,
        "buffer_high_water": high_water,
        "meta": meta,
    }


def _main(argv=None) -> int:
    """``python -m repro.obs.export --validate FILE`` — the CI hook."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.export", description="Validate a repro trace_event file."
    )
    parser.add_argument("trace", help="path to a --trace output file")
    parser.add_argument("--validate", action="store_true",
                        help="accepted for readability; validation always runs")
    parser.add_argument("--min-worker-pids", type=int, default=0)
    parser.add_argument("--require", nargs="*", default=[],
                        metavar="SPAN", help="span names that must be present")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="counter track names that must be present")
    parser.add_argument("--min-counter-events", type=int, default=0)
    args = parser.parse_args(argv)
    try:
        summary = validate_chrome_trace(
            args.trace,
            min_worker_pids=args.min_worker_pids,
            require_spans=tuple(args.require),
            require_counters=tuple(args.require_counter),
            min_counter_events=args.min_counter_events,
        )
    except ValueError as e:
        print(f"INVALID: {e}")
        return 1
    dropped = summary["dropped_spans"]
    drop_note = f", {dropped} dropped" if dropped else ""
    print(
        f"OK: {summary['n_spans']} spans, "
        f"{summary['n_counter_events']} counter events, "
        f"{len(summary['worker_pids'])} worker pids{drop_note}, "
        f"stages: {', '.join(summary['span_names'])}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(_main())
