"""``repro.obs`` — structured tracing, stage metrics, worker telemetry.

The κ metric makes *testbed* behaviour measurable; this package does the
same for the toolkit's own runtime, which until now was a black box: no
logging, no timers, no visibility into the process pool.  Three layers:

* :mod:`~repro.obs.trace` — a zero-dependency span tracer
  (``span("analysis.order.block", lo=0, hi=8192)`` context manager and
  ``traced`` decorator) recording wall/CPU time, pid and tid into a
  thread-safe buffer, with a sub-microsecond no-op path when disabled;
* :mod:`~repro.obs.metrics` — a counter/gauge/histogram registry
  (monotonic counters, ns-resolution log2-bucket timing histograms) the
  engine feeds: shard queue-wait, task wall time, shm bytes, pool
  submissions and failures, simulation runs, ordering blocks merged;
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto),
  JSONL span logs, and the human ``--stats`` table;
* :mod:`~repro.obs.worker` — worker-side collection: pool tasks ship
  their spans and metric deltas back piggybacked on results
  (:class:`~repro.obs.worker.TaskTelemetry`), merged parent-side with
  correct pid attribution so one timeline shows the whole fan-out;
* :mod:`~repro.obs.sink` — the streaming span sink: bounded ring +
  background flusher writing spans and counter samples incrementally to
  JSONL/Chrome files, O(capacity) memory for traces of any length;
* :mod:`~repro.obs.live` — live telemetry: counter-track sampling on a
  tick (Chrome ``ph:"C"`` events), per-session labeled gauges, and the
  zero-dependency ``/metrics`` (Prometheus text) + ``/healthz`` server.

Surface: ``repro ... --trace FILE.json`` / ``--stats`` on every CLI
command, or ``REPRO_TRACE=FILE.json`` in the environment; long-running
commands add ``--stream-trace FILE`` (incremental, bounded memory),
``--serve-metrics PORT`` and ``--counter-tick MS``.  Observation is
inert by construction — κ and every ``MetricVector`` are bit-identical
with tracing on or off (``tests/test_obs.py``,
``tests/test_obs_live.py``).

See ``docs/observability.md`` for the span catalog and Perfetto how-to.
"""

from . import export, live, metrics, sink, trace, worker
from .export import (
    chrome_trace,
    spans_jsonl,
    stats_table,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from .live import (
    COUNTER_EVENTS,
    LIVE_GAUGES,
    CounterSampler,
    LabeledGauges,
    MetricsServer,
    prometheus_text,
)
from .metrics import (
    REGISTRY,
    Registry,
    counter,
    gauge,
    histogram,
    histogram_quantile,
)
from .sink import SpanSink
from .trace import (
    SpanRecord,
    TraceBuffer,
    active_sink,
    disable,
    drain,
    enable,
    get_meta,
    install_sink,
    is_enabled,
    records,
    reset,
    set_meta,
    span,
    traced,
    uninstall_sink,
)
from .worker import TaskEnvelope, TaskTelemetry, absorb, run_local, run_traced

__all__ = [
    "trace",
    "metrics",
    "export",
    "worker",
    "sink",
    "live",
    "SpanSink",
    "CounterSampler",
    "LabeledGauges",
    "MetricsServer",
    "prometheus_text",
    "COUNTER_EVENTS",
    "LIVE_GAUGES",
    "install_sink",
    "active_sink",
    "uninstall_sink",
    "histogram_quantile",
    "span",
    "traced",
    "enable",
    "disable",
    "is_enabled",
    "records",
    "drain",
    "set_meta",
    "get_meta",
    "reset",
    "SpanRecord",
    "TraceBuffer",
    "REGISTRY",
    "Registry",
    "counter",
    "gauge",
    "histogram",
    "chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "write_spans_jsonl",
    "stats_table",
    "validate_chrome_trace",
    "TaskTelemetry",
    "TaskEnvelope",
    "run_traced",
    "run_local",
    "absorb",
]
