"""``repro.obs`` — structured tracing, stage metrics, worker telemetry.

The κ metric makes *testbed* behaviour measurable; this package does the
same for the toolkit's own runtime, which until now was a black box: no
logging, no timers, no visibility into the process pool.  Three layers:

* :mod:`~repro.obs.trace` — a zero-dependency span tracer
  (``span("analysis.order.block", lo=0, hi=8192)`` context manager and
  ``traced`` decorator) recording wall/CPU time, pid and tid into a
  thread-safe buffer, with a sub-microsecond no-op path when disabled;
* :mod:`~repro.obs.metrics` — a counter/gauge/histogram registry
  (monotonic counters, ns-resolution log2-bucket timing histograms) the
  engine feeds: shard queue-wait, task wall time, shm bytes, pool
  submissions and failures, simulation runs, ordering blocks merged;
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto),
  JSONL span logs, and the human ``--stats`` table;
* :mod:`~repro.obs.worker` — worker-side collection: pool tasks ship
  their spans and metric deltas back piggybacked on results
  (:class:`~repro.obs.worker.TaskTelemetry`), merged parent-side with
  correct pid attribution so one timeline shows the whole fan-out.

Surface: ``repro ... --trace FILE.json`` / ``--stats`` on every CLI
command, or ``REPRO_TRACE=FILE.json`` in the environment.  Observation
is inert by construction — κ and every ``MetricVector`` are
bit-identical with tracing on or off (``tests/test_obs.py``).

See ``docs/observability.md`` for the span catalog and Perfetto how-to.
"""

from . import export, metrics, trace, worker
from .export import (
    chrome_trace,
    spans_jsonl,
    stats_table,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from .metrics import REGISTRY, Registry, counter, gauge, histogram
from .trace import (
    SpanRecord,
    TraceBuffer,
    disable,
    drain,
    enable,
    get_meta,
    is_enabled,
    records,
    reset,
    set_meta,
    span,
    traced,
)
from .worker import TaskEnvelope, TaskTelemetry, absorb, run_local, run_traced

__all__ = [
    "trace",
    "metrics",
    "export",
    "worker",
    "span",
    "traced",
    "enable",
    "disable",
    "is_enabled",
    "records",
    "drain",
    "set_meta",
    "get_meta",
    "reset",
    "SpanRecord",
    "TraceBuffer",
    "REGISTRY",
    "Registry",
    "counter",
    "gauge",
    "histogram",
    "chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "write_spans_jsonl",
    "stats_table",
    "validate_chrome_trace",
    "TaskTelemetry",
    "TaskEnvelope",
    "run_traced",
    "run_local",
    "absorb",
]
