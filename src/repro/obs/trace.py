"""Zero-dependency span tracer for the reproduction's runtime.

The paper's whole contribution is making testbed behaviour *measurable*;
this module does the same for the toolkit's own runtime.  A *span* is one
timed stage of an invocation — ``span("analysis.shard.timing", lo=0,
hi=65536)`` — recorded with wall time, CPU time, process id and thread id
into a thread-safe in-memory buffer.  Exporters
(:mod:`repro.obs.export`) turn the buffer into a Chrome ``trace_event``
JSON (loadable in Perfetto), a flat JSONL log, or a human ``--stats``
table.

Design constraints, in priority order:

1. **Disabled means free.**  Tracing is off by default; ``span()`` with
   the module flag down returns a shared no-op context manager without
   allocating a record — well under a microsecond per call
   (``tests/test_obs.py`` guards this).  Spans are placed at *stage and
   task* granularity only (a comparison emits dozens, never one per
   packet), so the instrumented engine's wall time with tracing off is
   the pre-instrumentation wall time.
2. **Observation never changes results.**  Nothing in this package feeds
   back into any metric; the differential guard
   (``tests/test_obs.py::TestTracingIsInert``) proves κ and every
   :class:`~repro.core.kappa.MetricVector` are bit-identical with
   tracing on and off.
3. **Workers participate.**  Pool workers run their own buffer and ship
   it back piggybacked on task results (see :mod:`repro.obs.worker`), so
   a single exported timeline shows the whole fan-out with correct pid
   attribution.

Span naming convention: ``package.stage.substage`` — e.g.
``testbed.record``, ``sim.run``, ``analysis.match.bucket``,
``analysis.order.block``.  The catalog lives in
``docs/observability.md``.

Clocks: span start is :func:`time.time_ns` (epoch — comparable across
the processes of one machine, which is what lets parent and worker spans
share a timeline); duration is :func:`time.perf_counter_ns`
(monotonic); CPU time is :func:`time.thread_time_ns`.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "TraceBuffer",
    "enable",
    "disable",
    "is_enabled",
    "span",
    "traced",
    "records",
    "drain",
    "set_meta",
    "get_meta",
    "reset",
    "BUFFER",
    "install_sink",
    "active_sink",
    "uninstall_sink",
]

#: Module-level enable flag — the no-op fast path's only check.
_enabled: bool = False

#: Hard cap on buffered spans: tracing is stage-granular, so a real
#: invocation emits a few thousand spans at most; the cap only guards
#: against a runaway caller, and drops are counted, never silent.
MAX_BUFFERED_SPANS = 200_000


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span.

    ``start_ns`` is epoch nanoseconds (cross-process comparable);
    ``dur_ns`` is monotonic-clock duration; ``cpu_ns`` is the thread's
    CPU time spent inside the span.  ``attrs`` carries the caller's
    keyword annotations (small scalars only, by convention).
    """

    name: str
    start_ns: int
    dur_ns: int
    cpu_ns: int
    pid: int
    tid: int
    attrs: dict = field(default_factory=dict)


class TraceBuffer:
    """Thread-safe append-only span store with a drop-counting cap.

    When a *sink* is attached (:meth:`set_sink`) finished spans stream
    into it instead of accumulating here — the buffer stays empty and a
    trace of arbitrary length holds O(sink capacity) memory.  The sink
    counts its own drops; the buffer's ``dropped`` stays the in-memory
    story.
    """

    def __init__(self, max_spans: int = MAX_BUFFERED_SPANS) -> None:
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._dropped = 0
        self._high_water = 0
        self.max_spans = max_spans
        #: Streaming destination; anything with ``offer_span(record)``.
        self._sink = None

    def set_sink(self, sink) -> None:
        """Route future spans into ``sink`` (None restores buffering)."""
        self._sink = sink

    @property
    def sink(self):
        return self._sink

    def append(self, record: SpanRecord) -> None:
        sink = self._sink
        if sink is not None:
            sink.offer_span(record)
            return
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
                return
            self._spans.append(record)
            if len(self._spans) > self._high_water:
                self._high_water = len(self._spans)

    def extend(self, spans) -> None:
        sink = self._sink
        if sink is not None:
            for record in spans:
                sink.offer_span(record)
            return
        with self._lock:
            room = self.max_spans - len(self._spans)
            spans = list(spans)
            if len(spans) > room:
                self._dropped += len(spans) - room
                spans = spans[:room]
            self._spans.extend(spans)
            if len(self._spans) > self._high_water:
                self._high_water = len(self._spans)

    def records(self) -> list[SpanRecord]:
        """A snapshot of the buffered spans (buffer unchanged)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[SpanRecord]:
        """Return and clear the buffered spans."""
        with self._lock:
            out = self._spans
            self._spans = []
            return out

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    @property
    def high_water(self) -> int:
        """Most spans ever resident in memory at once (export meta)."""
        with self._lock:
            return self._high_water

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The process-global buffer every span lands in.  Workers get their own
#: copy at fork/spawn; :mod:`repro.obs.worker` ships theirs back.
BUFFER = TraceBuffer()

#: Free-form run metadata embedded into every export (seeds, command,
#: scale) so artifacts are self-describing.
_meta: dict = {}
_meta_lock = threading.Lock()


def enable() -> None:
    """Turn span collection on (idempotent)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn span collection off; buffered spans are kept until drained."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether spans are currently being collected in this process."""
    return _enabled


class _NoopSpan:
    """The shared disabled-mode context manager: does nothing, fast."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """A live span: times itself from ``__enter__`` to ``__exit__``."""

    __slots__ = ("name", "attrs", "_start_ns", "_t0", "_cpu0")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._start_ns = time.time_ns()
        self._cpu0 = time.thread_time_ns()
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter_ns() - self._t0
        cpu = time.thread_time_ns() - self._cpu0
        if exc_type is not None:
            # Annotate rather than suppress: the span shows *where* the
            # failure spent its time, the exception still propagates.
            self.attrs["error"] = exc_type.__name__
        BUFFER.append(
            SpanRecord(
                name=self.name,
                start_ns=self._start_ns,
                dur_ns=dur,
                cpu_ns=cpu,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
            )
        )
        return False


def span(name: str, **attrs):
    """A context manager timing one named stage.

    With tracing disabled this returns a shared no-op object without
    allocating anything — the fast path the engine's call sites rely on.
    ``attrs`` annotate the span (keep them small scalars: shard bounds,
    run indices, row counts).
    """
    if not _enabled:
        return _NOOP
    return _Span(name, attrs)


def traced(name: str | None = None, **attrs):
    """Decorator form: time every call of the wrapped function.

    The enable flag is checked per *call*, not at decoration time, so
    decorating at import (before the CLI enables tracing) still works.
    """

    def deco(fn):
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def records() -> list[SpanRecord]:
    """Snapshot of the process-global buffer."""
    return BUFFER.records()


def drain() -> list[SpanRecord]:
    """Return and clear the process-global buffer."""
    return BUFFER.drain()


def set_meta(key: str, value) -> None:
    """Attach run metadata (seed, command, scale) to future exports."""
    with _meta_lock:
        _meta[key] = value


def get_meta() -> dict:
    """A copy of the accumulated run metadata."""
    with _meta_lock:
        return dict(_meta)


def install_sink(sink) -> None:
    """Stream future spans into ``sink`` instead of buffering them.

    ``sink`` is anything with ``offer_span(record)`` — in practice a
    :class:`repro.obs.sink.SpanSink`.  The caller keeps ownership: this
    never closes a sink, it only routes spans at it.
    """
    BUFFER.set_sink(sink)


def active_sink():
    """The currently installed streaming sink, or None."""
    return BUFFER.sink


def uninstall_sink():
    """Detach and return the streaming sink (not closed), or None."""
    sink = BUFFER.sink
    BUFFER.set_sink(None)
    return sink


def reset() -> None:
    """Disable tracing, detach any sink, clear buffer and metadata (tests).

    A detached sink is *not* closed — the owner that installed it still
    holds the handle and the file.
    """
    disable()
    BUFFER.set_sink(None)
    BUFFER.drain()
    with _meta_lock:
        _meta.clear()
    with BUFFER._lock:
        BUFFER._dropped = 0
        BUFFER._high_water = 0
