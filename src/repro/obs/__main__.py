"""``python -m repro.obs <trace.json> [--validate ...]`` — trace validation.

Delegates to :func:`repro.obs.export._main`; running the package (rather
than ``repro.obs.export`` directly) avoids the double-import runpy warning
since ``repro.obs`` imports its submodules eagerly.
"""

from .export import _main

if __name__ == "__main__":
    raise SystemExit(_main())
