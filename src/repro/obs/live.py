"""Live telemetry: counter-track sampling and a `/metrics` exposition.

The registry (:mod:`repro.obs.metrics`) is a snapshot-at-exit story;
this module makes it *watchable* while the process runs — the layer
PASTRAMI argues for (performance is only trustworthy when instability
is observed continuously, PAPERS.md) and the per-node live telemetry
IoTreeplay builds replay coordination on.  Three pieces, all
zero-dependency:

* :class:`CounterSampler` — a background thread sampling the registry's
  counters and gauges (plus the labeled :data:`LIVE_GAUGES`) on a
  configurable tick and emitting one sample per *changed* metric.
  Pointed at a :class:`~repro.obs.sink.SpanSink` it produces Chrome
  ``ph:"C"`` counter events, so Perfetto shows ``pool.tasks_inflight``,
  ``sweep.units_done`` or per-session windowed κ as live tracks
  alongside the spans; pointed at :data:`COUNTER_EVENTS` (the bounded
  in-memory buffer) the samples ride into the one-shot ``--trace``
  export instead.
* :class:`LabeledGauges` — last-write-wins gauges with labels, for the
  metrics the flat registry can't name: ``monitor.window_kappa`` keyed
  by session.  :class:`~repro.analysis.streamkappa.KappaMonitor`
  publishes here on every window close.
* :class:`MetricsServer` — an opt-in ``http.server``-based snapshot
  server (``--serve-metrics PORT`` / ``REPRO_METRICS_PORT``):
  ``/metrics`` renders the registry and the labeled gauges in Prometheus
  text exposition format 0.0.4 (:func:`prometheus_text` — log2-ns
  histograms become cumulative ``le`` buckets), ``/healthz`` a JSON
  snapshot (uptime, run metadata, counters, gauges).  Serving reads
  snapshots only: like every :mod:`repro.obs` layer it is **inert** —
  a scraped run produces bit-identical metric outputs to an unscraped
  one (the differential guard in ``tests/test_obs_live.py``).
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time

from . import trace
from .metrics import REGISTRY, Registry, bucket_bounds

__all__ = [
    "LabeledGauges",
    "LIVE_GAUGES",
    "CounterEventBuffer",
    "COUNTER_EVENTS",
    "CounterSampler",
    "MetricsServer",
    "prometheus_text",
]


# ----------------------------------------------------------------------
# Labeled gauges (the per-session κ channel)
# ----------------------------------------------------------------------

class LabeledGauges:
    """Thread-safe last-write-wins gauges with label sets.

    The flat registry names one value per metric; live monitoring needs
    one value per (metric, labels) — ``monitor.window_kappa`` per
    session.  Writers call :meth:`set` from wherever the value is born
    (a window close, a sweep unit completion); readers take
    :meth:`snapshot`.  Values are plain floats: this is an observation
    channel, never an input to any metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}

    def set(self, name: str, labels: dict, value: float) -> None:
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        with self._lock:
            self._values[key] = float(value)

    def snapshot(self) -> list[tuple[str, dict, float]]:
        """``(name, labels, value)`` triples, sorted for stable output."""
        with self._lock:
            items = sorted(self._values.items())
        return [(name, dict(labels), value) for (name, labels), value in items]

    def reset(self) -> None:
        """Drop every gauge (tests)."""
        with self._lock:
            self._values.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)


#: The process-global labeled-gauge store (sessions' windowed κ lives here).
LIVE_GAUGES = LabeledGauges()


# ----------------------------------------------------------------------
# Counter samples for the one-shot (in-memory) trace export
# ----------------------------------------------------------------------

class CounterEventBuffer:
    """Bounded in-memory counter-sample store with counted drops.

    The ``--trace`` twin of streaming into a sink: samples accumulate
    here and :func:`repro.obs.export.chrome_trace` merges them into the
    exported timeline as ``ph:"C"`` events.
    """

    def __init__(self, max_events: int = 200_000) -> None:
        self._lock = threading.Lock()
        self._events: list[tuple[str, int, float, int]] = []
        self._dropped = 0
        self.max_events = int(max_events)

    def offer_counter(
        self, name: str, ts_ns: int, value: float, pid: int | None = None
    ) -> bool:
        if pid is None:
            pid = os.getpid()
        with self._lock:
            if len(self._events) >= self.max_events:
                self._dropped += 1
                return False
            self._events.append((name, int(ts_ns), float(value), pid))
        return True

    def events(self) -> list[tuple[str, int, float, int]]:
        """A snapshot of ``(name, ts_ns, value, pid)`` samples."""
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: Samples destined for the one-shot ``--trace`` export.
COUNTER_EVENTS = CounterEventBuffer()


# ----------------------------------------------------------------------
# The sampler
# ----------------------------------------------------------------------

class CounterSampler:
    """Sample the registry into counter-track events on a fixed tick.

    ``target`` is anything with an ``offer_counter(name, ts_ns, value,
    pid)`` method — a :class:`~repro.obs.sink.SpanSink` (streaming) or a
    :class:`CounterEventBuffer` (one-shot export).  Each tick snapshots
    the registry's counters and gauges plus the labeled live gauges and
    emits one sample per metric **whose value changed** since its last
    emission (every metric is emitted on its first sighting, and
    :meth:`close` takes one final sample, so even a sub-tick run gets
    each track's last word).  Labeled gauges render as
    ``name{k=v,...}`` track names — one Perfetto track per session.

    Sampling reads snapshots and writes to the observation channel only:
    it can never change a metric output (``TestLiveObservabilityIsInert``
    pins this).
    """

    def __init__(
        self,
        target,
        *,
        interval_s: float = 0.25,
        registry: Registry | None = None,
        live: LabeledGauges | None = None,
        autostart: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.target = target
        self.interval_s = float(interval_s)
        self.registry = REGISTRY if registry is None else registry
        self.live = LIVE_GAUGES if live is None else live
        self._last: dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._pid = os.getpid()
        self.samples_emitted = 0
        if autostart:
            self.start()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-counter-sampler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def sample(self) -> int:
        """Take one sample now; returns the number of events emitted."""
        ts = time.time_ns()
        snap = self.registry.snapshot()
        emitted = 0
        series: list[tuple[str, float]] = []
        series.extend((name, float(v)) for name, v in snap["counters"].items())
        series.extend((name, float(v)) for name, v in snap["gauges"].items())
        for name, labels, value in self.live.snapshot():
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                series.append((f"{name}{{{rendered}}}", value))
            else:
                series.append((name, value))
        for name, value in series:
            if self._last.get(name) == value:
                continue
            self._last[name] = value
            if self.target.offer_counter(name, ts, value, self._pid):
                emitted += 1
        self.samples_emitted += emitted
        return emitted

    def close(self) -> None:
        """Stop the tick thread after one final sample (idempotent)."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.sample()

    def __enter__(self) -> "CounterSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """A registry metric name as a Prometheus metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _prom_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_number(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(
    registry: Registry | None = None, live: LabeledGauges | None = None
) -> str:
    """The registry + labeled gauges in Prometheus text format 0.0.4.

    Counters get a ``_total`` suffix, gauges map directly, and the
    log2-ns histograms render as native Prometheus histograms: cumulative
    ``_bucket{le="..."}`` series at the power-of-two upper bounds (only
    up to the highest occupied bucket, then ``+Inf``), plus ``_sum`` and
    ``_count``.  Values are nanoseconds — the ``_ns`` in every histogram
    name says so.
    """
    registry = REGISTRY if registry is None else registry
    live = LIVE_GAUGES if live is None else live
    snap = registry.snapshot()
    lines: list[str] = []

    for name in sorted(snap["counters"]):
        prom = _prom_name(name) + "_total"
        lines.append(f"# HELP {prom} repro counter {name}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {snap['counters'][name]}")

    for name in sorted(snap["gauges"]):
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} repro gauge {name}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_number(snap['gauges'][name])}")

    by_name: dict[str, list[tuple[dict, float]]] = {}
    for name, labels, value in live.snapshot():
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} repro live gauge {name}")
        lines.append(f"# TYPE {prom} gauge")
        for labels, value in by_name[name]:
            if labels:
                rendered = ",".join(
                    f'{_NAME_RE.sub("_", k)}="{_prom_label_value(str(v))}"'
                    for k, v in sorted(labels.items())
                )
                lines.append(f"{prom}{{{rendered}}} {_prom_number(value)}")
            else:
                lines.append(f"{prom} {_prom_number(value)}")

    for name in sorted(snap["histograms"]):
        h = snap["histograms"][name]
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} repro log2-ns histogram {name}")
        lines.append(f"# TYPE {prom} histogram")
        occupied = [i for i, c in enumerate(h["counts"]) if c]
        cum = 0
        for i in range(occupied[-1] + 1 if occupied else 0):
            cum += h["counts"][i]
            le = bucket_bounds(i)[1]
            lines.append(f'{prom}_bucket{{le="{le}"}} {cum}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {h["count"]}')
        lines.append(f"{prom}_sum {h['total']}")
        lines.append(f"{prom}_count {h['count']}")

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The exposition server
# ----------------------------------------------------------------------

class MetricsServer:
    """Zero-dependency ``/metrics`` + ``/healthz`` snapshot server.

    Binds ``host:port`` at construction (``port=0`` asks the OS for an
    ephemeral port — read :attr:`port` for the real one), serves from a
    daemon thread after :meth:`start`.  Opt-in only: the CLI starts one
    for ``--serve-metrics PORT`` / ``REPRO_METRICS_PORT``.  Handlers
    read registry snapshots — serving can never perturb a metric output.
    """

    def __init__(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        registry: Registry | None = None,
        live: LabeledGauges | None = None,
    ) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        registry = REGISTRY if registry is None else registry
        live = LIVE_GAUGES if live is None else live
        started_ns = time.time_ns()

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = prometheus_text(registry, live).encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/healthz":
                    snap = registry.snapshot()
                    body = (json.dumps({
                        "status": "ok",
                        "pid": os.getpid(),
                        "uptime_s": (time.time_ns() - started_ns) / 1e9,
                        "meta": trace.get_meta(),
                        "counters": snap["counters"],
                        "gauges": snap["gauges"],
                        "n_live_gauges": len(live),
                    }, sort_keys=True) + "\n").encode()
                    ctype = "application/json"
                else:
                    self.send_error(404, "unknown path (try /metrics, /healthz)")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request noise
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
