"""Counter / gauge / histogram registry for engine internals.

PASTRAMI's observation (PAPERS.md) — packet-processing performance
numbers are dominated by measurement *instability* — applies to the
toolkit's own runtime: a single wall-time number per invocation hides
queue waits, stragglers and retry storms.  This registry gives the
engine cheap, always-on distributions instead:

* **counters** — monotonic event counts (``pool.tasks_submitted``,
  ``pool.task_failures``, ``order.blocks_merged``, ``shm.bytes_shared``);
* **gauges** — last-write-wins levels (``pool.workers``);
* **histograms** — ns-resolution timing distributions with **fixed log2
  buckets**: an observation ``v`` lands in bucket ``v.bit_length()``
  (bucket 0 holds ``v <= 0``), so bucket ``k`` spans ``[2^(k-1), 2^k)``
  ns.  Bucket edges are value-independent, which makes merging across
  processes a plain vector add — the property the worker-telemetry
  round-trip (:mod:`repro.obs.worker`) relies on.

Everything is thread-safe behind one registry lock.  Recording is a few
dict operations at *task* granularity (never per packet), so the
registry stays on even when span tracing is disabled — that is what
keeps ``pool.task_failures`` visible on untraced runs.

Worker processes accumulate into their own registry copy;
:meth:`Registry.drain_deltas` / :meth:`Registry.merge_deltas` ship the
deltas back piggybacked on task results with no double counting.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "histogram_quantile",
    "N_HIST_BUCKETS",
]

#: log2 buckets cover [1 ns, 2^63 ns); bucket 0 catches non-positive
#: observations, the last bucket is open-ended.
N_HIST_BUCKETS = 64


def bucket_index(value: int) -> int:
    """The fixed log2 bucket of an observation (ns)."""
    v = int(value)
    if v <= 0:
        return 0
    return min(v.bit_length(), N_HIST_BUCKETS - 1)


def bucket_bounds(index: int) -> tuple[int, int]:
    """The ``[lo, hi)`` ns range of bucket ``index``."""
    if index <= 0:
        return (0, 1)
    return (1 << (index - 1), 1 << index)


class Counter:
    """A monotonic event counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters are monotonic; use a gauge for levels")
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-log2-bucket timing histogram (ns resolution)."""

    __slots__ = ("name", "_lock", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.counts = [0] * N_HIST_BUCKETS
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value_ns: int) -> None:
        v = int(value_ns)
        with self._lock:
            self.counts[bucket_index(v)] += 1
            self.count += 1
            self.total += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counts": list(self.counts),
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
            }


class Registry:
    """The named metric namespace of one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- handles ---------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, self._lock)
        return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, self._lock)
        return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name, self._lock)
        return h

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything, as plain data (for exporters and tests)."""
        with self._lock:
            return {
                "counters": {n: c._value for n, c in self._counters.items()},
                "gauges": {n: g._value for n, g in self._gauges.items()},
                "histograms": {
                    n: {
                        "counts": list(h.counts),
                        "count": h.count,
                        "total": h.total,
                        "min": h.min,
                        "max": h.max,
                    }
                    for n, h in self._histograms.items()
                },
            }

    # -- worker shipping -------------------------------------------------
    def drain_deltas(self) -> dict:
        """Return counter/histogram contents and zero them (worker side).

        Gauges are process-local levels and do not travel.  The returned
        dict is plain data (picklable) shaped for :meth:`merge_deltas`.
        """
        with self._lock:
            counters = {}
            for n, c in self._counters.items():
                if c._value:
                    counters[n] = c._value
                    c._value = 0
            hists = {}
            for n, h in self._histograms.items():
                if h.count:
                    hists[n] = {
                        "counts": list(h.counts),
                        "count": h.count,
                        "total": h.total,
                        "min": h.min,
                        "max": h.max,
                    }
                    h.counts = [0] * N_HIST_BUCKETS
                    h.count = 0
                    h.total = 0
                    h.min = None
                    h.max = None
        return {"counters": counters, "histograms": hists}

    def merge_deltas(self, deltas: dict) -> None:
        """Fold a worker's drained deltas into this registry (parent side)."""
        for name, n in deltas.get("counters", {}).items():
            self.counter(name).add(n)
        for name, snap in deltas.get("histograms", {}).items():
            h = self.histogram(name)
            with self._lock:
                for i, c in enumerate(snap["counts"]):
                    h.counts[i] += c
                h.count += snap["count"]
                h.total += snap["total"]
                if snap["min"] is not None:
                    h.min = snap["min"] if h.min is None else min(h.min, snap["min"])
                if snap["max"] is not None:
                    h.max = snap["max"] if h.max is None else max(h.max, snap["max"])

    def reset(self) -> None:
        """Drop every metric (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def histogram_quantile(snap: dict, q: float) -> float:
    """Estimate the ``q``-quantile (0..1) of a histogram snapshot.

    ``snap`` is the plain-data form (:meth:`Histogram.snapshot` or one
    entry of :meth:`Registry.snapshot`).  The rank is located by walking
    the cumulative log2 bucket counts, then interpolated linearly inside
    the bucket's ``[lo, hi)`` range — the standard Prometheus estimate,
    so a p99 from ``--stats`` matches what a scrape-side
    ``histogram_quantile()`` would report.  The result is clamped to the
    exact observed ``[min, max]``, which also makes single-observation
    histograms report the observation itself rather than a bucket edge.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = snap["count"]
    if not total:
        return 0.0
    rank = q * total
    cum = 0.0
    value = float(snap["max"] if snap["max"] is not None else 0)
    for i, c in enumerate(snap["counts"]):
        if not c:
            continue
        if cum + c >= rank:
            lo, hi = bucket_bounds(i)
            value = lo + (hi - lo) * max(0.0, rank - cum) / c
            break
        cum += c
    if snap["min"] is not None:
        value = max(value, float(snap["min"]))
    if snap["max"] is not None:
        value = min(value, float(snap["max"]))
    return value


#: The process-global registry all engine instrumentation writes to.
REGISTRY = Registry()


def counter(name: str) -> Counter:
    """Shorthand for ``REGISTRY.counter(name)``."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Shorthand for ``REGISTRY.gauge(name)``."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Shorthand for ``REGISTRY.histogram(name)``."""
    return REGISTRY.histogram(name)
