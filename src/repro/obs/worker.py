"""Worker-side telemetry collection and the parent-side merge.

Pool workers are separate processes: their spans land in *their* copy of
the trace buffer and their counters in *their* registry, invisible to
the parent.  IoTreeplay's lesson (PAPERS.md) is that distributed replay
tooling needs synchronization/timing telemetry built into the transport
to be debuggable — so this module piggybacks telemetry on the task
results themselves instead of inventing a side channel:

* :func:`run_traced` is the worker-side wrapper the pool's
  :func:`~repro.parallel.pool.submit_task` dispatches when tracing is
  on.  It enables collection locally, wraps the real task body in a span
  named after the stage, and returns the payload inside a
  :class:`TaskEnvelope` carrying a :class:`TaskTelemetry`;
* :func:`absorb` (called by :func:`~repro.parallel.pool.gather` on every
  envelope it unwraps) extends the parent's buffer with the worker's
  spans — each already stamped with the worker's pid, so a single
  Perfetto timeline shows the whole fan-out — merges the counter and
  histogram deltas, and feeds the two pool-level distributions:
  ``pool.queue_wait_ns`` (submit → worker pickup) and
  ``pool.task_wall_ns`` (task body wall time);
* :func:`run_local` is the ``jobs=1`` twin: the identical span naming
  for in-process execution, so serial and pooled traces line up.

When tracing is disabled nothing here runs at all — ``submit_task``
submits the bare task body and results cross the pool unwrapped, byte
for byte as before.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from . import trace
from .metrics import REGISTRY

__all__ = [
    "TaskTelemetry",
    "TaskEnvelope",
    "run_traced",
    "run_traced_batch",
    "run_local",
    "absorb",
]


@dataclass(frozen=True)
class TaskTelemetry:
    """Everything one worker task observed about itself.

    ``queue_wait_ns`` is the submit-to-pickup latency measured across
    processes with epoch clocks (same machine, so comparable — clamped
    at zero against sub-resolution skew); ``task_wall_ns`` is the task
    body's wall time; ``spans`` and ``metric_deltas`` are the worker's
    drained trace buffer and registry.
    """

    pid: int
    queue_wait_ns: int
    task_wall_ns: int
    spans: tuple[trace.SpanRecord, ...] = ()
    metric_deltas: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TaskEnvelope:
    """A task result with its telemetry riding along."""

    payload: object
    telemetry: TaskTelemetry


def run_traced(fn, task, name: str, attrs: dict, submit_ns: int) -> TaskEnvelope:
    """Worker-side: run ``fn(task)`` under a span, ship telemetry back.

    Runs in the worker process.  Collection is enabled locally (the
    worker may have been forked before the parent enabled tracing, or be
    a spawn-start process that inherited nothing), and the buffer is
    cleared first so a previous untraced task's stray spans cannot be
    misattributed to this one.
    """
    trace.enable()
    trace.drain()
    REGISTRY.drain_deltas()
    start_ns = time.time_ns()
    t0 = time.perf_counter_ns()
    with trace.span(name, **attrs):
        payload = fn(task)
    wall = time.perf_counter_ns() - t0
    return TaskEnvelope(
        payload,
        TaskTelemetry(
            pid=os.getpid(),
            queue_wait_ns=max(0, start_ns - submit_ns),
            task_wall_ns=wall,
            spans=tuple(trace.drain()),
            metric_deltas=REGISTRY.drain_deltas(),
        ),
    )


def run_traced_batch(
    fn, tasks: list, name: str, attrs_list: list | None, submit_ns: int
) -> TaskEnvelope:
    """Worker-side: run a batch of tasks, one span **each**, one envelope.

    The batched twin of :func:`run_traced` for
    :func:`repro.parallel.pool.submit_batch`: telemetry setup, the
    envelope, and the queue-wait measurement are paid once per batch, but
    every task still records its own span under ``name`` with its entry
    from ``attrs_list`` — so a trace of a batched run shows the identical
    per-task span stream as an unbatched one, just with fewer envelopes.
    The payload is the list of per-task results in task order.
    """
    trace.enable()
    trace.drain()
    REGISTRY.drain_deltas()
    start_ns = time.time_ns()
    t0 = time.perf_counter_ns()
    payloads = []
    for k, task in enumerate(tasks):
        attrs = attrs_list[k] if attrs_list is not None else {}
        with trace.span(name, **attrs):
            payloads.append(fn(task))
    wall = time.perf_counter_ns() - t0
    return TaskEnvelope(
        payloads,
        TaskTelemetry(
            pid=os.getpid(),
            queue_wait_ns=max(0, start_ns - submit_ns),
            task_wall_ns=wall,
            spans=tuple(trace.drain()),
            metric_deltas=REGISTRY.drain_deltas(),
        ),
    )


def run_local(fn, task, name: str, **attrs):
    """The ``jobs=1`` twin of :func:`run_traced`: same span, in process.

    The span lands directly in the parent buffer (no envelope, no
    drain), so serial and pooled runs of the same stage produce the same
    span names and the no-op fast path still applies when disabled.
    """
    if not trace.is_enabled():
        return fn(task)
    with trace.span(name, **attrs):
        return fn(task)


def absorb(telemetry: TaskTelemetry) -> None:
    """Parent-side: fold one worker task's telemetry into this process."""
    trace.BUFFER.extend(telemetry.spans)
    REGISTRY.merge_deltas(telemetry.metric_deltas)
    REGISTRY.histogram("pool.queue_wait_ns").observe(telemetry.queue_wait_ns)
    REGISTRY.histogram("pool.task_wall_ns").observe(telemetry.task_wall_ns)
