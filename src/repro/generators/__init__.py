"""Traffic sources: CBR generation, capture replay, gap control, TCP noise.

The substrate equivalents of the tools the paper uses or compares against:
Pktgen-DPDK (:class:`~repro.generators.cbr.CBRGenerator`), tcpreplay
(:class:`~repro.generators.pcapsrc.CaptureReplaySource`), MoonGen's
invalid-packet gap control (:class:`~repro.generators.moongen.MoonGenGapControl`),
and the Section 7.1 iperf3 noise
(:class:`~repro.generators.tcpnoise.TCPNoiseGenerator`).
"""

from .cbr import CBRGenerator
from .imix import SIMPLE_IMIX, IMIXGenerator
from .moongen import GapControlResult, MoonGenGapControl
from .pcapsrc import CaptureReplaySource
from .splitter import split_by_port, split_round_robin
from .tcpconn import (
    TCPConnectionRecord,
    TCPConnectionReplayer,
    synthesize_connections,
)
from .tcpnoise import TCPNoiseGenerator

__all__ = [
    "CBRGenerator",
    "IMIXGenerator",
    "SIMPLE_IMIX",
    "CaptureReplaySource",
    "MoonGenGapControl",
    "GapControlResult",
    "TCPNoiseGenerator",
    "TCPConnectionRecord",
    "TCPConnectionReplayer",
    "synthesize_connections",
    "split_round_robin",
    "split_by_port",
]
