"""TCP connection-level replay (the TCPOpera / DETER baseline of Section 9).

TCPOpera and DETER replay *TCP connections* — handshakes, byte streams,
teardowns reconstructed from captures or statistics — rather than exact
packets: "TCPOpera does not replay the specific packets and DETER was
demonstrated at 10 Gbps with a larger (5 µs) packet gap.  Both are
limited to TCP traffic."

This model reproduces those semantics and, deliberately, those
limitations:

* a :class:`TCPConnectionRecord` carries what the tools preserve — byte
  counts, connection timing envelope, endpoints — not packet identities;
* :class:`TCPConnectionReplayer` re-emits each connection as a fresh
  handshake + MSS-resegmented data + teardown, pacing data with a
  configurable minimum gap (DETER's demonstrated 5 µs floor);
* non-TCP input is rejected (:meth:`TCPConnectionReplayer.replay_capture`
  raises on traffic it cannot express), which is exactly the generality
  gap Choir fills.

The Section-9 ablation benchmark quantifies the consequence: packet-level
IAT fidelity is unachievable through a connection-level replay even when
the byte streams reproduce perfectly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.pktarray import PacketArray, make_tags

__all__ = ["TCPConnectionRecord", "TCPConnectionReplayer", "synthesize_connections"]

#: Handshake/teardown segment size (headers-only frames on the wire).
CTRL_BYTES = 60
#: Replay-node id namespace for regenerated TCP packets.
TCP_REPLAY_ID = 126


@dataclass(frozen=True)
class TCPConnectionRecord:
    """What a connection-level replayer keeps about one connection."""

    conn_id: int
    start_ns: float
    duration_ns: float
    bytes_a_to_b: int
    mss: int = 1448

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if self.bytes_a_to_b < 0:
            raise ValueError("byte count must be non-negative")
        if self.mss < 1:
            raise ValueError("mss must be positive")

    @property
    def n_data_segments(self) -> int:
        """Segments after MSS resegmentation (not the original packets!)."""
        return int(np.ceil(self.bytes_a_to_b / self.mss)) if self.bytes_a_to_b else 0


def synthesize_connections(
    n: int,
    rng: np.random.Generator,
    *,
    window_ns: float = 10e6,
    mean_bytes: float = 200_000.0,
    mss: int = 1448,
) -> list[TCPConnectionRecord]:
    """A synthetic connection log (the trace a tool would have captured).

    Connection sizes are lognormal (heavy-tailed, like real flow-size
    distributions); starts are uniform over the window; durations scale
    with size plus a latency floor.
    """
    if n < 1:
        raise ValueError("need at least one connection")
    starts = np.sort(rng.uniform(0.0, window_ns, n))
    sizes = rng.lognormal(np.log(mean_bytes), 1.0, n).astype(np.int64)
    durations = 1e5 + sizes * 16.0  # 16 ns/byte ≈ 500 Mbps per flow + RTT floor
    return [
        TCPConnectionRecord(
            conn_id=i,
            start_ns=float(starts[i]),
            duration_ns=float(durations[i]),
            bytes_a_to_b=int(sizes[i]),
            mss=mss,
        )
        for i in range(n)
    ]


@dataclass(frozen=True)
class TCPConnectionReplayer:
    """Replay connection records with TCP semantics, not packet fidelity.

    Parameters
    ----------
    rtt_ns:
        Emulated round-trip time driving the handshake spacing.
    min_gap_ns:
        Pacing floor between data segments (DETER: ~5 µs at 10 Gbps).
    """

    rtt_ns: float = 100_000.0
    min_gap_ns: float = 5_000.0

    def __post_init__(self) -> None:
        if self.rtt_ns < 0 or self.min_gap_ns < 0:
            raise ValueError("timing parameters must be non-negative")

    def replay_connection(
        self, record: TCPConnectionRecord, *, seq_base: int = 0
    ) -> PacketArray:
        """One connection as wire packets: SYN, data segments, FIN."""
        n_data = record.n_data_segments
        n_total = n_data + 2  # SYN + data... + FIN
        sizes = np.full(n_total, record.mss + 52, dtype=np.int64)
        sizes[0] = CTRL_BYTES
        sizes[-1] = CTRL_BYTES
        if n_data:
            tail = record.bytes_a_to_b - (n_data - 1) * record.mss
            sizes[n_data] = tail + 52  # last data segment carries the remainder

        times = np.empty(n_total, dtype=np.float64)
        times[0] = record.start_ns
        if n_data:
            # Data begins one RTT after SYN (handshake), paced evenly over
            # the recorded duration but never under the gap floor.
            gap = max(
                (record.duration_ns - self.rtt_ns) / max(n_data, 1),
                self.min_gap_ns,
            )
            times[1 : n_data + 1] = (
                record.start_ns + self.rtt_ns + np.arange(n_data) * gap
            )
        times[-1] = times[-2] + self.min_gap_ns if n_total > 1 else record.start_ns

        tags = make_tags(n_total, replayer_id=TCP_REPLAY_ID, start=seq_base)
        return PacketArray(tags, sizes, times, meta={"conn_id": record.conn_id})

    def replay(self, records: list[TCPConnectionRecord]) -> PacketArray:
        """Replay a whole connection log, merged in wire order."""
        if not records:
            raise ValueError("need at least one connection record")
        batches = []
        seq = 0
        for rec in records:
            batch = self.replay_connection(rec, seq_base=seq)
            seq += len(batch)
            batches.append(batch)
        merged, _ = PacketArray.merge(batches)
        return merged

    def replay_capture(self, capture: PacketArray, protocols: np.ndarray) -> PacketArray:
        """Guard rail: connection replay only speaks TCP.

        ``protocols`` carries each packet's IP protocol number; anything
        other than 6 (TCP) is un-replayable by this class of tool.
        """
        protocols = np.asarray(protocols)
        if protocols.shape[0] != len(capture):
            raise ValueError("need one protocol number per packet")
        non_tcp = np.unique(protocols[protocols != 6])
        if non_tcp.size:
            raise ValueError(
                f"connection-level replay cannot express protocols "
                f"{non_tcp.tolist()}; only TCP (6) is supported"
            )
        raise NotImplementedError(
            "reconstructing connection records from raw captures is the "
            "TCPOpera preprocessing step; synthesize records instead"
        )
