"""Stream splitting across parallel replay nodes (Figure 1).

The paper's headline picture divides one incoming packet stream between
several replay nodes whose outputs merge again at a single recorder.  The
evaluation's dual-replayer topology (Section 6.2) realizes this with the
generator sending "out of one port each to two replayers" — i.e. the
split happens at the source, per flow/port.

Two policies are provided:

* ``round_robin`` — packet *k* goes to node ``k mod n`` (fine-grained
  interleave; the stressful case for ordering);
* ``by_port`` — the stream is divided into per-node substreams that
  preserve each node's internal spacing by taking every n-th packet and
  *keeping its original timestamp*, which is exactly what two generator
  ports each carrying half the aggregate rate produce.

Both return one batch per node, with tags re-stamped so each node's
packets carry its replayer id (the paper's 16-byte trailer includes "the
replay node they were emitted by").
"""

from __future__ import annotations

from ..net.pktarray import PacketArray, make_tags

__all__ = ["split_round_robin", "split_by_port"]


def _restamp(batch: PacketArray, replayer_id: int) -> PacketArray:
    """Re-tag a substream into a replayer's tag namespace."""
    return PacketArray(
        make_tags(len(batch), replayer_id=replayer_id),
        batch.sizes,
        batch.times_ns,
        meta=dict(batch.meta),
    )


def split_round_robin(stream: PacketArray, n_nodes: int) -> list[PacketArray]:
    """Deal packets to nodes in strict rotation."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    out = []
    for k in range(n_nodes):
        sub = stream.select(slice(k, None, n_nodes))
        out.append(_restamp(sub, replayer_id=k + 1))
    return out


def split_by_port(stream: PacketArray, n_nodes: int) -> list[PacketArray]:
    """Per-port split: node *k* gets every ``n``-th packet at original times.

    Equivalent to :func:`split_round_robin` for a CBR comb — each port
    carries an evenly spaced substream at ``1/n`` of the aggregate rate,
    matching Section 6.2's "20 Gbps to each replayer".
    """
    return split_round_robin(stream, n_nodes)
