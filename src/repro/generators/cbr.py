"""Constant-bit-rate traffic generation (the Pktgen-DPDK role).

The evaluation feeds every replayer from a CBR stream: "the generator
created a 40 Gbps stream of 1,400-byte packets" (Section 6).  A software
CBR generator is not perfectly periodic — it suffers the same transmit
path as everything else — so the model exposes both the ideal schedule
and a software-jittered one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.pktarray import PacketArray
from ..net.units import rate_to_pps

__all__ = ["CBRGenerator"]


@dataclass(frozen=True)
class CBRGenerator:
    """A constant-bit-rate packet source.

    Parameters
    ----------
    rate_bps:
        Target bit rate (payload accounting, matching the paper's
        40 Gbps / 1400 B / 3.52 Mpps arithmetic).
    packet_bytes:
        Fixed frame size.
    jitter_ns:
        Std of per-packet software send jitter; 0 gives the ideal comb.
    """

    rate_bps: float
    packet_bytes: int = 1400
    jitter_ns: float = 15.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if self.jitter_ns < 0:
            raise ValueError("jitter_ns must be non-negative")

    @property
    def pps(self) -> float:
        """Packets per second of the stream."""
        return rate_to_pps(self.rate_bps, self.packet_bytes)

    @property
    def iat_ns(self) -> float:
        """Ideal inter-packet gap."""
        return 1e9 / self.pps

    def n_packets(self, duration_ns: float) -> int:
        """Packets emitted over a capture window (Section 6: 0.3 s → 1.05M)."""
        return int(np.floor(duration_ns / self.iat_ns)) + 1

    def generate(
        self,
        duration_ns: float,
        rng: np.random.Generator | None = None,
        *,
        start_ns: float = 0.0,
        replayer_id: int = 0,
    ) -> PacketArray:
        """Emit the stream covering ``[start_ns, start_ns + duration_ns]``.

        With jitter enabled an ``rng`` is required; jitter never reorders
        the comb (deviations are clipped inside half a gap).
        """
        n = self.n_packets(duration_ns)
        times = start_ns + np.arange(n, dtype=np.float64) * self.iat_ns
        if self.jitter_ns > 0:
            if rng is None:
                raise ValueError("jitter requires an rng")
            bound = 0.49 * self.iat_ns  # keep the comb order-preserving
            noise = np.clip(rng.normal(0.0, self.jitter_ns, n), -bound, bound)
            times = times + noise
        return PacketArray.uniform(
            n,
            self.packet_bytes,
            times,
            replayer_id=replayer_id,
            meta={"source": "cbr", "rate_bps": self.rate_bps},
        )
