"""MoonGen-style invalid-packet gap control (the Section 9 baseline).

MoonGen sidesteps the NIC's DMA-pull timing uncertainty by keeping the
transmit queue *always full*: real packets are spaced by inserting invalid
frames (bad CRC) that downstream devices discard, so inter-packet gaps are
set by frame lengths, not by doorbell timing — nanosecond-accurate, with a
minimum gap of ~60 ns (one minimal frame + overheads).

The paper's Section 9 point, which :mod:`benchmarks.bench_ablation_baselines`
demonstrates: the technique *requires the full line rate*.  On a shared
NIC, the physical scheduler interleaves other tenants' frames into what
the VF believes is a saturated wire, stretching the carefully constructed
gaps — and saturating a shared port at line rate is abusive to co-tenants
anyway.  Choir tolerates rate limitation because it never needs to own the
wire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.pktarray import PacketArray
from ..net.sriov import SharedPort
from ..net.units import wire_time_ns

__all__ = ["MoonGenGapControl", "GapControlResult"]

#: Smallest schedulable gap: one minimum Ethernet frame on the wire.
MIN_FILLER_BYTES = 64


@dataclass(frozen=True)
class GapControlResult:
    """Outcome of a gap-controlled transmission."""

    packets: PacketArray
    n_fillers: int
    achieved_gaps_ns: np.ndarray
    target_gaps_ns: np.ndarray

    @property
    def gap_error_ns(self) -> np.ndarray:
        """Per-gap achieved-minus-target error."""
        return self.achieved_gaps_ns - self.target_gaps_ns


@dataclass(frozen=True)
class MoonGenGapControl:
    """Generate a stream with gaps set by invalid filler frames.

    Parameters
    ----------
    rate_bps:
        The line rate the generator *assumes it owns*.
    overhead_bytes:
        Wire overhead per frame.
    """

    rate_bps: float
    overhead_bytes: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")

    def min_gap_ns(self) -> float:
        """The technique's floor: one minimal filler frame's wire time."""
        return float(
            wire_time_ns(MIN_FILLER_BYTES, self.rate_bps, overhead_bytes=self.overhead_bytes)
        )

    def plan(
        self, sizes_bytes: np.ndarray, target_gaps_ns: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Wire schedule: per-real-packet start times and filler counts.

        Gaps are realized as runs of filler frames whose total wire time
        best approximates each target gap; quantization error is one
        filler frame's wire time at worst.
        """
        sizes = np.asarray(sizes_bytes, dtype=np.float64)
        gaps = np.asarray(target_gaps_ns, dtype=np.float64)
        if gaps.shape[0] != sizes.shape[0]:
            raise ValueError("need one target gap per packet (first is offset)")
        filler_ns = self.min_gap_ns()
        frame_ns = np.asarray(
            wire_time_ns(sizes, self.rate_bps, overhead_bytes=self.overhead_bytes)
        )
        # A target IAT (start-to-start) of packet k is realized as packet
        # k-1's frame plus a run of fillers; the frame itself is the floor.
        n_fillers = np.zeros(gaps.shape[0], dtype=np.int64)
        n_fillers[1:] = np.maximum(
            0, np.round((gaps[1:] - frame_ns[:-1]) / filler_ns)
        ).astype(np.int64)
        starts = np.concatenate(
            [[0.0], np.cumsum(frame_ns[:-1] + n_fillers[1:] * filler_ns)]
        )
        return starts, n_fillers

    def transmit(
        self,
        sizes_bytes: np.ndarray,
        target_gaps_ns: np.ndarray,
        *,
        shared_port: SharedPort | None = None,
        background: PacketArray | None = None,
        replayer_id: int = 0,
    ) -> GapControlResult:
        """Send the gap-controlled stream, optionally through a shared port.

        On dedicated hardware (no ``shared_port``) gaps come out within
        filler-frame quantization of the targets.  Behind a contended
        shared port the saturated-wire assumption collapses and the
        achieved gaps inherit the co-tenant interleaving.
        """
        starts, n_fillers = self.plan(sizes_bytes, target_gaps_ns)
        n = starts.shape[0]
        batch = PacketArray.uniform(
            n, int(np.asarray(sizes_bytes)[0]), starts, replayer_id=replayer_id
        )
        batch = PacketArray(batch.tags, np.asarray(sizes_bytes, dtype=np.int64), starts)

        if shared_port is not None:
            result = shared_port.traverse(batch, background)
            out = result.batch
        else:
            out = batch

        achieved = np.diff(out.times_ns, prepend=out.times_ns[0] if len(out) else 0.0)
        targets = np.asarray(target_gaps_ns, dtype=np.float64)[: len(out)]
        targets = targets.copy()
        if targets.size:
            targets[0] = 0.0
        return GapControlResult(
            packets=out,
            n_fillers=int(n_fillers.sum()),
            achieved_gaps_ns=achieved,
            target_gaps_ns=targets,
        )
