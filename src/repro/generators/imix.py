"""IMIX-style mixed-packet-size traffic.

The paper's evaluation is all fixed 1400-byte packets; real workloads mix
sizes (the classic "simple IMIX": 64/576/1500 bytes at 7:4:1).  Mixed
sizes stress different parts of the pipeline — serialization times vary
per packet, burst byte budgets differ from packet budgets — so the
reproduction ships an IMIX source to check that κ's behaviour is not an
artifact of the uniform workload (see the IMIX ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.pktarray import PacketArray, make_tags

__all__ = ["IMIXGenerator", "SIMPLE_IMIX"]

#: The classic "simple IMIX" mix: (size_bytes, weight).
SIMPLE_IMIX = ((64, 7), (576, 4), (1500, 1))


@dataclass(frozen=True)
class IMIXGenerator:
    """A constant-*packet*-rate source with a mixed size distribution.

    Parameters
    ----------
    pps:
        Packet rate (sizes vary, so bit rate follows the mix).
    mix:
        Tuple of (size_bytes, weight) pairs.
    jitter_ns:
        Per-packet send jitter (order-preserving).
    """

    pps: float
    mix: tuple = SIMPLE_IMIX
    jitter_ns: float = 15.0

    def __post_init__(self) -> None:
        if self.pps <= 0:
            raise ValueError("pps must be positive")
        if not self.mix or any(s <= 0 or w <= 0 for s, w in self.mix):
            raise ValueError("mix entries must have positive sizes and weights")
        if self.jitter_ns < 0:
            raise ValueError("jitter_ns must be non-negative")

    @property
    def mean_packet_bytes(self) -> float:
        """Weighted mean frame size of the mix."""
        total_w = sum(w for _, w in self.mix)
        return sum(s * w for s, w in self.mix) / total_w

    @property
    def mean_rate_bps(self) -> float:
        """Long-run bit rate implied by the packet rate and the mix."""
        return self.pps * self.mean_packet_bytes * 8.0

    def generate(
        self,
        duration_ns: float,
        rng: np.random.Generator,
        *,
        start_ns: float = 0.0,
        replayer_id: int = 0,
    ) -> PacketArray:
        """Emit the mixed stream over the window."""
        iat = 1e9 / self.pps
        n = int(np.floor(duration_ns / iat)) + 1
        times = start_ns + np.arange(n, dtype=np.float64) * iat
        if self.jitter_ns > 0:
            bound = 0.49 * iat
            times = times + np.clip(rng.normal(0.0, self.jitter_ns, n), -bound, bound)
        sizes_pool = np.array([s for s, _ in self.mix], dtype=np.int64)
        weights = np.array([w for _, w in self.mix], dtype=np.float64)
        weights /= weights.sum()
        sizes = sizes_pool[rng.choice(sizes_pool.shape[0], size=n, p=weights)]
        return PacketArray(
            make_tags(n, replayer_id=replayer_id),
            sizes,
            times,
            meta={"source": "imix", "pps": self.pps},
        )
