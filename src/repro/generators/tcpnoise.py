"""iperf3-style background traffic: parallel TCP streams with AIMD rates.

Section 7.1 creates noise with "an iperf3 client with 8 TCP streams"
whose aggregate "bounced between 35 Gbps and 50 Gbps, mostly around
40 Gbps".  What the foreground experiment observes is the background's
*offered load trajectory* on the shared port, so the model generates a
packet stream whose instantaneous rate follows per-stream AIMD sawtooths:
each stream climbs linearly (congestion avoidance) and multiplicatively
halves at random loss epochs; eight desynchronized sawtooths sum to an
aggregate that oscillates in a band around the mean, like the paper's
iperf3 readings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.pktarray import PacketArray

__all__ = ["TCPNoiseGenerator"]

#: Tag namespace for background packets, outside any replayer's space.
NOISE_REPLAYER_ID = 0x7F00 >> 8  # 127


@dataclass(frozen=True)
class TCPNoiseGenerator:
    """Aggregate of AIMD TCP streams sharing a path.

    Parameters
    ----------
    n_streams:
        Parallel connections (the paper's test uses 8).
    mean_rate_bps:
        Long-run aggregate rate target.
    packet_bytes:
        MSS-sized frames (1500 B Ethernet by default).
    loss_epoch_ns:
        Mean spacing of per-stream multiplicative-decrease events.
    rate_step_ns:
        Resolution of the piecewise-constant rate trajectory.
    """

    n_streams: int = 8
    mean_rate_bps: float = 40e9
    packet_bytes: int = 1500
    loss_epoch_ns: float = 25e6  # ~25 ms between per-stream backoffs
    rate_step_ns: float = 1e6
    #: Mean packets per line-rate train (TSO/GSO senders put ~64 KB on the
    #: wire back-to-back).  ``None`` spreads packets smoothly instead —
    #: unrealistically gentle for TCP, kept for ablation.
    train_packets: float | None = 43.0
    #: Wire rate the trains burst at.
    line_rate_bps: float = 100e9

    def __post_init__(self) -> None:
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.mean_rate_bps <= 0:
            raise ValueError("mean_rate_bps must be positive")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if self.loss_epoch_ns <= 0 or self.rate_step_ns <= 0:
            raise ValueError("time scales must be positive")
        if self.train_packets is not None and self.train_packets < 1:
            raise ValueError("train_packets must be >= 1 when set")
        if self.line_rate_bps <= 0:
            raise ValueError("line_rate_bps must be positive")

    def rate_trajectory(
        self, duration_ns: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(grid times, aggregate rate in bps) over the window.

        Each stream's rate is an AIMD sawtooth: between loss epochs it
        grows linearly; at an epoch it halves.  Growth is normalized so
        each stream's long-run average is ``mean/n_streams`` (see the
        inspection-paradox note inline).
        """
        n_grid = max(2, int(np.ceil(duration_ns / self.rate_step_ns)) + 1)
        grid = np.linspace(0.0, duration_ns, n_grid)
        per_stream_mean = self.mean_rate_bps / self.n_streams
        total = np.zeros(n_grid)
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        for _ in range(self.n_streams):
            # Loss epochs: Poisson process; start phase randomized.
            n_losses = rng.poisson(duration_ns / self.loss_epoch_ns) + 1
            epochs = np.sort(rng.uniform(0.0, duration_ns, n_losses))
            # Sawtooth: rate = peak/2 + slope * (t - last_epoch).  With
            # exponential epoch gaps the time-average of `since` is the
            # epoch itself (inspection paradox), so the long-run mean rate
            # is peak/2 + slope*epoch = peak; set peak to the target mean.
            peak = per_stream_mean
            slope = (peak / 2.0) / self.loss_epoch_ns
            last_epoch = np.concatenate([[grid[0] - rng.uniform(0, self.loss_epoch_ns)], epochs])
            idx = np.searchsorted(last_epoch, grid, side="right") - 1
            since = grid - last_epoch[idx]
            total += peak / 2.0 + slope * since
        # Normalize the realized mean to the configured aggregate: finite
        # windows and boundary effects bias the sawtooth average, and the
        # paper reports iperf3's *achieved* rate, which is what callers set.
        total *= self.mean_rate_bps / total.mean()
        return grid, total

    def generate(
        self,
        duration_ns: float,
        rng: np.random.Generator,
        *,
        start_ns: float = 0.0,
    ) -> PacketArray:
        """Emit the background packet stream over the window.

        Packet times are drawn from an inhomogeneous process whose
        intensity follows the rate trajectory: per grid step, the step's
        byte budget becomes a packet count, spread uniformly in the step.
        """
        grid, rate = self.rate_trajectory(duration_ns, rng)
        step = grid[1] - grid[0]
        # rate[bps] · step[ns]·1e-9 → bits per step; /8/size → packets per
        # step, with stochastic rounding so the long-run rate is unbiased.
        pkts_exact = rate[:-1] * (step * 1e-9) / 8.0 / self.packet_bytes
        counts = np.floor(pkts_exact).astype(np.int64)
        counts += rng.random(counts.shape) < (pkts_exact - counts)
        n = int(counts.sum())
        if n == 0:
            return PacketArray.uniform(0, self.packet_bytes, np.empty(0))
        step_idx = np.repeat(np.arange(counts.shape[0]), counts)
        if self.train_packets is None:
            offsets = rng.uniform(0.0, step, n)
        else:
            offsets = self._train_offsets(counts, step, rng)
        times = np.sort(start_ns + grid[step_idx] + offsets)
        return PacketArray.uniform(
            n,
            self.packet_bytes,
            times,
            replayer_id=NOISE_REPLAYER_ID,
            meta={"source": "tcp-noise", "streams": self.n_streams},
        )

    def _train_offsets(
        self, counts: np.ndarray, step_ns: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Within-step offsets that cluster packets into line-rate trains.

        Each step's packet budget is carved into geometric-sized trains; a
        train's packets ride back-to-back at the line rate from a uniform
        start offset.  This is the burst structure that actually overflows
        VF rings — smooth arrivals at the same mean rate never would.
        """
        from ..net.units import wire_time_ns

        spacing = float(wire_time_ns(self.packet_bytes, self.line_rate_bps))
        n = int(counts.sum())
        # Draw more trains than could possibly be needed, then cut.
        mean = float(self.train_packets)
        est = int(np.ceil(n / mean * 2)) + counts.shape[0] + 8
        train_sizes = rng.geometric(1.0 / mean, est).astype(np.int64)
        while train_sizes.sum() < n:  # pragma: no cover - overdraw guard
            train_sizes = np.concatenate(
                [train_sizes, rng.geometric(1.0 / mean, est)]
            )
        ends = np.cumsum(train_sizes)
        n_trains = int(np.searchsorted(ends, n)) + 1
        train_sizes = train_sizes[:n_trains].copy()
        train_sizes[-1] -= int(ends[n_trains - 1] - n)
        # Each packet's train and in-train position.
        train_of_pkt = np.repeat(np.arange(n_trains), train_sizes)
        pos_in_train = np.arange(n) - np.repeat(
            np.cumsum(train_sizes) - train_sizes, train_sizes
        )
        train_start = rng.uniform(0.0, step_ns, n_trains)
        return train_start[train_of_pkt] + pos_in_train * spacing

    def observed_rate_band_gbps(
        self, duration_ns: float, rng: np.random.Generator
    ) -> tuple[float, float, float]:
        """(min, mean, max) of the aggregate rate in Gbps over the window.

        Used by tests to check the paper's "bounced between 35 and 50,
        mostly around 40" characterization.
        """
        _, rate = self.rate_trajectory(duration_ns, rng)
        return (
            float(rate.min() / 1e9),
            float(rate.mean() / 1e9),
            float(rate.max() / 1e9),
        )
