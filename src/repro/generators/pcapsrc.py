"""Replay-from-capture source (the tcpreplay-style baseline).

tcpreplay-class tools read a pcap and re-send its packets, pacing with
coarse software sleeps against the system clock rather than busy-polling a
cycle counter.  The model exposes the pacing-policy spectrum the related
work spans:

* ``asap`` — ignore recorded gaps, send back-to-back (tcpreplay's
  ``--topspeed``);
* ``sleep`` — nanosleep-based pacing: each packet waits for its recorded
  offset but overshoots by the OS timer granularity (tcpreplay default);
* ``busy`` — busy-wait pacing at a fine granularity (what Choir does,
  here for apples-to-apples ablation).

Used by the Section 9 ablation benchmark to show why cycle-accurate
scheduling matters at multi-Mpps rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.pktarray import PacketArray
from ..net.queueing import fifo_departures
from ..net.units import wire_time_ns

__all__ = ["CaptureReplaySource"]

_POLICIES = ("asap", "sleep", "busy")


@dataclass(frozen=True)
class CaptureReplaySource:
    """Re-send a captured stream under a pacing policy.

    Parameters
    ----------
    rate_bps:
        NIC line rate for serialization.
    policy:
        One of ``asap``, ``sleep``, ``busy``.
    timer_granularity_ns:
        Sleep-wakeup quantization for the ``sleep`` policy (Linux hrtimer
        wakeups land ~50 µs late under load; idle systems ~5 µs).
    busy_granularity_ns:
        Poll overshoot bound for the ``busy`` policy.
    """

    rate_bps: float
    policy: str = "sleep"
    timer_granularity_ns: float = 50_000.0
    busy_granularity_ns: float = 40.0

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.timer_granularity_ns < 0 or self.busy_granularity_ns < 0:
            raise ValueError("granularities must be non-negative")

    def replay(
        self,
        capture: PacketArray,
        rng: np.random.Generator,
        *,
        start_ns: float = 0.0,
    ) -> PacketArray:
        """Wire times of the re-sent capture under the pacing policy."""
        n = len(capture)
        if n == 0:
            return capture
        rel = capture.times_ns - capture.times_ns[0]
        if self.policy == "asap":
            ready = np.full(n, start_ns)
        elif self.policy == "sleep":
            # Each sleep wakes up late by up to a timer quantum; the error
            # is one-sided and does not accumulate (absolute deadlines).
            ready = start_ns + rel + rng.uniform(0.0, self.timer_granularity_ns, n)
            ready = np.maximum.accumulate(ready)
        else:  # busy
            ready = start_ns + rel + rng.uniform(0.0, self.busy_granularity_ns, n)
            ready = np.maximum.accumulate(ready)
        service = np.asarray(wire_time_ns(capture.sizes, self.rate_bps))
        return capture.with_times(fifo_departures(ready, service))
