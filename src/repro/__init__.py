"""repro — reproduction of "Network Replay and Consistency Across Testbeds".

The package reproduces, in pure scientific Python, the SC Workshops '25
Choir paper: the Section-3 consistency metrics (``U``, ``O``, ``L``, ``I``
and the compound score ``κ``), a faithful model of the Choir DPDK
record/replay middlebox, the traffic-generation and testbed substrates the
evaluation depends on, and drivers that regenerate every table and figure
of the paper's evaluation.

Quickstart::

    import repro

    env = repro.testbeds.local_single_replayer()
    trials = repro.experiments.run_trials(env, n_runs=5, seed=7)
    report = repro.compare_series(trials, environment=env.name)
    print(report.mean_row())

See ``README.md`` for the architecture overview and ``EXPERIMENTS.md`` for
the paper-vs-measured record.
"""

from . import core
from .core import (
    DeltaHistogram,
    KappaScaling,
    MetricVector,
    PairReport,
    RunSeriesReport,
    SymlogBins,
    Trial,
    compare_series,
    compare_trials,
    iat_variation,
    kappa_from_vector,
    latency_variation,
    ordering_variation,
    uniqueness_variation,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "Trial",
    "MetricVector",
    "KappaScaling",
    "SymlogBins",
    "DeltaHistogram",
    "PairReport",
    "RunSeriesReport",
    "compare_trials",
    "compare_series",
    "uniqueness_variation",
    "ordering_variation",
    "latency_variation",
    "iat_variation",
    "kappa_from_vector",
    "__version__",
]


def __getattr__(name):
    """Lazily expose heavy subpackages (net, timing, replay, ...).

    Keeps ``import repro`` light while letting ``repro.testbeds`` etc.
    resolve on first touch.
    """
    lazy = {
        "net",
        "timing",
        "replay",
        "generators",
        "testbeds",
        "analysis",
        "experiments",
        "parallel",
        "viz",
    }
    if name in lazy:
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
